package sssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anytime/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, graph.Weight(1+rng.Intn(9)))
	}
	return g
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, graph.Weight(i+1))
	}
	return g
}

func TestDijkstraPath(t *testing.T) {
	g := pathGraph(5)
	d := Dijkstra(g, 0)
	want := []graph.Dist{0, 1, 3, 6, 10}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 2)
	d := Dijkstra(g, 0)
	if d[2] != graph.InfDist || d[3] != graph.InfDist {
		t.Fatalf("unreachable distances = %v", d)
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g := randomGraph(n, m, seed)
		src := int(uint(seed) % uint(n))
		dd := Dijkstra(g, src)
		bf := BellmanFord(g, src)
		for i := range dd {
			if dd[i] != bf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAPSPAgainstFloydWarshall(t *testing.T) {
	g := randomGraph(40, 100, 17)
	apsp := APSP(g)
	fw := DenseFromGraph(g)
	FloydWarshall(fw)
	for i := range apsp {
		for j := range apsp[i] {
			if apsp[i][j] != fw[i][j] {
				t.Fatalf("APSP[%d][%d]=%d vs FW %d", i, j, apsp[i][j], fw[i][j])
			}
		}
	}
}

func TestAPSPSymmetric(t *testing.T) {
	g := randomGraph(30, 60, 23)
	apsp := APSP(g)
	for i := range apsp {
		if apsp[i][i] != 0 {
			t.Fatalf("diagonal not 0 at %d", i)
		}
		for j := range apsp[i] {
			if apsp[i][j] != apsp[j][i] {
				t.Fatalf("asymmetric at [%d][%d]", i, j)
			}
		}
	}
}

// Masked Dijkstra must equal Dijkstra on the induced local sub-graph plus
// one-hop boundary extension: boundary vertices are relaxed, not expanded.
func TestDijkstraMaskSemantics(t *testing.T) {
	// path 0-1-2-3 with a shortcut 0-3 through masked-out vertex 3
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(0, 3, 1)
	mask := []bool{true, true, true, false, false} // {0,1,2} local
	dist := make([]graph.Dist, 5)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	var buf heapBuf
	DijkstraInto(g, 0, dist, mask, &buf)
	// 3 is reachable as a boundary vertex (relaxed via 0-3 and 2-3)
	if dist[3] != 1 {
		t.Fatalf("dist[3] = %d, want 1", dist[3])
	}
	// 4 is only reachable through 3, which must not be expanded
	if dist[4] != graph.InfDist {
		t.Fatalf("dist[4] = %d, want InfDist (mask violated)", dist[4])
	}
}

func TestMultiSourceMatchesSequential(t *testing.T) {
	g := randomGraph(60, 150, 31)
	sources := []int32{0, 7, 13, 25, 42, 59}
	for _, workers := range []int{1, 2, 4, 8} {
		rows := make([][]graph.Dist, len(sources))
		for i := range rows {
			rows[i] = make([]graph.Dist, 60)
			for j := range rows[i] {
				rows[i][j] = graph.InfDist
			}
		}
		ops := MultiSource(g, sources, rows, nil, workers)
		if ops == 0 {
			t.Fatal("no ops reported")
		}
		for i, s := range sources {
			want := Dijkstra(g, int(s))
			for j := range want {
				if rows[i][j] != want[j] {
					t.Fatalf("workers=%d source=%d mismatch at %d", workers, s, j)
				}
			}
		}
	}
}

func TestMultiSourceOpsDeterministic(t *testing.T) {
	g := randomGraph(50, 120, 37)
	sources := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	mk := func() [][]graph.Dist {
		rows := make([][]graph.Dist, len(sources))
		for i := range rows {
			rows[i] = make([]graph.Dist, 50)
			for j := range rows[i] {
				rows[i][j] = graph.InfDist
			}
		}
		return rows
	}
	ops1 := MultiSource(g, sources, mk(), nil, 1)
	ops4 := MultiSource(g, sources, mk(), nil, 4)
	if ops1 != ops4 {
		t.Fatalf("op count depends on workers: %d vs %d", ops1, ops4)
	}
}

func TestHeapOrdering(t *testing.T) {
	var h heap
	in := []graph.Dist{9, 3, 7, 1, 8, 2, 2, 5}
	for i, d := range in {
		h.push(int32(i), d)
	}
	prev := graph.Dist(-1)
	for !h.empty() {
		_, d := h.pop()
		if d < prev {
			t.Fatalf("heap popped %d after %d", d, prev)
		}
		prev = d
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := randomGraph(2000, 8000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, i%2000)
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, dRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g := randomGraph(n, m, seed)
		src := int(uint(seed) % uint(n))
		delta := graph.Weight(dRaw%9) + 1
		want := Dijkstra(g, src)
		got, ops := DeltaStepping(g, src, delta)
		if ops <= 0 {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSteppingEdgeCases(t *testing.T) {
	// empty graph
	d, _ := DeltaStepping(graph.New(0), 0, 1)
	if len(d) != 0 {
		t.Fatal("empty graph should yield empty distances")
	}
	// non-positive delta falls back to 1
	g := pathGraph(4)
	got, _ := DeltaStepping(g, 0, 0)
	want := Dijkstra(g, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta=0 fallback mismatch at %d", i)
		}
	}
	// disconnected target stays InfDist
	g2 := graph.New(3)
	g2.MustAddEdge(0, 1, 5)
	d2, _ := DeltaStepping(g2, 0, 3)
	if d2[2] != graph.InfDist {
		t.Fatal("unreachable vertex got finite distance")
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	g := randomGraph(2000, 8000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, i%2000, 3)
	}
}
