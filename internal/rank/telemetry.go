package rank

import (
	"time"
)

// Telemetry is one rank's anytime-quality snapshot, refreshed at the end
// of every RC step and read concurrently by the metrics scrape goroutines
// (through Runner.Telemetry, never the step-loop state directly). The
// quality gauges quantify the paper's anytime property: how far the
// current partial solution is from the exact fixpoint, per rank, live.
type Telemetry struct {
	// Rank is this process's rank.
	Rank int
	// Step is the number of completed RC steps.
	Step int64
	// Rows is the number of distance rows this rank owns; DirtyRows of
	// them still carry unshipped updates, ConvergedRows are quiescent.
	Rows, DirtyRows, ConvergedRows int
	// DirtyFraction is DirtyRows/Rows — the row-granular convergence gap.
	DirtyFraction float64
	// FrontierDensity is the set-bit density of the change frontier within
	// the dirty rows — the quantity the masked min-plus kernels cut over
	// on (~25% in PR 8's calibration).
	FrontierDensity float64
	// BoundGap is the fraction of all (source, target) entries still in
	// some change frontier: the proxy for how much of the matrix may still
	// improve — 0 at an exact fixpoint.
	BoundGap float64
	// StepBusy is the compute time (ship build + relax) of the last step;
	// StepWall its full wall time including the exchange wait; BusyTotal
	// the cumulative busy time. max/mean StepBusy across ranks is the
	// paper's Fig. 5 imbalance, computed by the cluster aggregator.
	StepBusy, StepWall, BusyTotal time.Duration
	// Degraded is true while the run sits at a degraded fixpoint (ranks
	// down); DegradedSteps counts steps taken in that mode and
	// OutageEpisodes the distinct entries into it.
	Degraded       bool
	DegradedSteps  int
	OutageEpisodes int
	// DownRanks is the size of the coordinator's current down set.
	DownRanks int
	// EventsApplied and Rejoins mirror the step-loop counters.
	EventsApplied, Rejoins int
}

// Telemetry returns the latest snapshot (safe for concurrent use).
func (r *Runner) Telemetry() Telemetry {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	return r.telem
}

// updateTelemetry recomputes the snapshot at a step boundary. Runs on the
// step-loop goroutine; only the final assignment takes the lock, and the
// scan allocates nothing (the zero-cost contract of the rank hot path —
// see TestRankTelemetryZeroAlloc).
func (r *Runner) updateTelemetry(busy, wall time.Duration) {
	table := r.rs.Table()
	rows := table.Len()
	dirty := 0
	for _, row := range table.Rows() {
		if row.Dirty {
			dirty++
		}
	}
	_, bits := table.FrontierStats()
	cols := table.Cols()
	if r.degraded {
		r.degradedSteps++
	}
	r.busyTotal += busy

	t := Telemetry{
		Rank:           r.t.Rank(),
		Step:           int64(r.stats.Steps),
		Rows:           rows,
		DirtyRows:      dirty,
		ConvergedRows:  rows - dirty,
		StepBusy:       busy,
		StepWall:       wall,
		BusyTotal:      r.busyTotal,
		Degraded:       r.degraded,
		DegradedSteps:  r.degradedSteps,
		OutageEpisodes: r.outages,
		EventsApplied:  r.stats.EventsApplied,
		Rejoins:        r.stats.Rejoins,
	}
	if rows > 0 {
		t.DirtyFraction = float64(dirty) / float64(rows)
		if cols > 0 {
			t.BoundGap = float64(bits) / (float64(rows) * float64(cols))
			if dirty > 0 {
				t.FrontierDensity = float64(bits) / (float64(dirty) * float64(cols))
			}
		}
	}
	for _, d := range r.down {
		if d {
			t.DownRanks++
		}
	}
	r.tmu.Lock()
	r.telem = t
	r.tmu.Unlock()
}
