package rank

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/graph"
	"anytime/internal/transport"
)

// testEvents is the dynamic stream the wire tests push through rank 0: a
// vertex batch exercising internal, external, and cross-batch pending
// edges, followed by plain edge additions between pre-existing vertices.
func testEvents(n int) []change.Event {
	return []change.Event{
		{Batch: &change.VertexBatch{
			NumVertices: 4,
			Internal:    []change.InternalEdge{{A: 0, B: 1, Weight: 2}, {A: 2, B: 3, Weight: 1}},
			External:    []change.ExternalEdge{{New: 0, Existing: 0, Weight: 1}, {New: 2, Existing: int32(n / 2), Weight: 3}, {New: 3, Existing: int32(n - 1), Weight: 2}},
		}},
		{EdgeAdds: []change.EdgeAdd{{U: 0, V: int32(n - 1), Weight: 1}, {U: int32(n / 3), V: int32(2 * n / 3), Weight: 2}}},
	}
}

// Dynamic events queued at rank 0 must ship over the wire, apply at the
// same boundary on every rank, and converge to the exact oracle of the
// grown graph — bit-identical to the single-process engine on the same
// final topology. Each rank owns a private graph copy (events mutate it),
// exactly like separate OS processes.
func TestRunnerInprocEventsMatchOracle(t *testing.T) {
	const n, P, seed = 100, 3, 13
	evs := testEvents(n)
	group := inprocGroup(P)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		dist [][]graph.Dist
		fail error
	)
	runners := make([]*Runner, P)
	for i := range group {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := func() error {
				r, err := New(group[i], Config{Graph: testGraph(t, n, seed), Seed: seed})
				if err != nil {
					return err
				}
				runners[i] = r
				if i == 0 {
					if err := r.QueueEvents(evs...); err != nil {
						return err
					}
				}
				if _, err := r.Run(); err != nil {
					return err
				}
				all, err := r.GatherDistances()
				if err != nil {
					return err
				}
				if i == 0 {
					mu.Lock()
					dist = all
					mu.Unlock()
				}
				return nil
			}()
			if err != nil {
				mu.Lock()
				if fail == nil {
					fail = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	for i, r := range runners {
		if r.Stats().EventsApplied != len(evs) {
			t.Fatalf("rank %d applied %d events, want %d", i, r.Stats().EventsApplied, len(evs))
		}
	}
	// Re-derive the grown topology the way a rejoiner would — base graph +
	// journal replay — and pin the runner's matrix to its exact oracle
	// (the single-process engine's converged fixed point).
	g2 := testGraph(t, n, seed)
	part2, err := Config{Graph: g2, Seed: seed}.withDefaults().Partitioner.Partition(g2, P)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.NewEventLog(P).Replay(g2, part2, evs); err != nil {
		t.Fatal(err)
	}
	if len(dist) != g2.NumVertices() {
		t.Fatalf("gathered %d rows, want %d (base %d + new vertices)", len(dist), g2.NumVertices(), n)
	}
	requireOracle(t, g2, dist)

	opts := core.NewOptions()
	opts.P = P
	opts.Seed = seed
	e, err := core.New(g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	engineDist := e.Distances()
	for v := range dist {
		for u := range dist[v] {
			if dist[v][u] != engineDist[v][u] {
				t.Fatalf("dist[%d][%d]: runner %d, engine %d", v, u, dist[v][u], engineDist[v][u])
			}
		}
	}
}

// Crash one rank mid-run (cooperative Abort, the in-process SIGKILL),
// verify the survivors reach a degraded convergence naming exactly the
// dead rank, rejoin a replacement from its recovery shard, and require the
// final gathered matrix to be bit-identical to a never-crashed run.
func TestRunnerInprocCrashRejoinBitIdentical(t *testing.T) {
	const n, P, seed = 90, 3, 17
	const victim = 2
	g := testGraph(t, n, seed)
	shardDir := t.TempDir()
	cfg := func() Config {
		return Config{
			Graph: g, Seed: seed,
			ShardDir: shardDir, ShardEvery: 1,
			MinSteps:     4,
			StepThrottle: 2 * time.Millisecond,
			RejoinWait:   20 * time.Second,
		}
	}
	group := transport.NewInprocGroup(P)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		dist [][]graph.Dist
		fail error
	)
	report := func(err error) {
		mu.Lock()
		if err != nil && fail == nil {
			fail = err
		}
		mu.Unlock()
	}
	runners := make([]*Runner, P)
	// Survivors run to completion.
	for i := 0; i < P; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := func() error {
				r, err := New(group[i], cfg())
				if err != nil {
					return err
				}
				runners[i] = r
				if _, err := r.Run(); err != nil {
					return err
				}
				all, err := r.GatherDistances()
				if i == 0 && err == nil {
					mu.Lock()
					dist = all
					mu.Unlock()
				}
				return err
			}()
			report(err)
		}(i)
	}
	// The victim steps twice (writing its shard each step), then dies.
	crashed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(crashed)
		r, err := New(group[victim], cfg())
		if err != nil {
			report(err)
			return
		}
		for s := 0; s < 2; s++ {
			if _, err := r.Step(); err != nil {
				report(err)
				return
			}
		}
		group[victim].Abort()
	}()
	// The supervisor: once the victim is dead, give the survivors time to
	// detect it and reach a degraded convergence, then relaunch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-crashed
		time.Sleep(100 * time.Millisecond)
		nt := transport.RejoinInproc(group[0], victim)
		r, err := Rejoin(nt, cfg())
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		runners[victim] = r
		mu.Unlock()
		if _, err := r.Run(); err != nil {
			report(err)
			return
		}
		_, err = r.GatherDistances()
		report(err)
	}()
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}

	for _, i := range []int{0, 1} {
		r := runners[i]
		if r.Stats().DegradedConvergences == 0 {
			t.Fatalf("survivor %d never reached a degraded convergence", i)
		}
		if seen := r.DownSeen(); len(seen) != 1 || seen[0] != victim {
			t.Fatalf("survivor %d outage report %v, want [%d]", i, seen, victim)
		}
		if r.Stats().Rejoins == 0 {
			t.Fatalf("survivor %d integrated no rejoin", i)
		}
		if !r.Converged() {
			t.Fatalf("survivor %d stopped without full convergence", i)
		}
		if len(r.DownProcs()) != 0 {
			t.Fatalf("survivor %d still holds %v down after the rejoin", i, r.DownProcs())
		}
	}
	if _, err := os.Stat(filepath.Join(shardDir, "aarank-2.shard")); err != nil {
		t.Fatalf("victim wrote no recovery shard: %v", err)
	}

	requireOracle(t, g, dist)
	// Bit-identical to a run that never crashed.
	clean := runRanks(t, inprocGroup(P), func(int) Config {
		return Config{Graph: g, Seed: seed}
	})
	for v := range dist {
		for u := range dist[v] {
			if dist[v][u] != clean[v][u] {
				t.Fatalf("dist[%d][%d]: crashed run %d, clean run %d", v, u, dist[v][u], clean[v][u])
			}
		}
	}
}
