package rank

import (
	"strconv"

	"anytime/internal/obs"
)

// RegisterMetrics exposes one rank's liveness plane on an obs Registry in
// Prometheus text form, under the aa_rank_* namespace. Scrapes run on the
// metrics server's goroutines concurrently with the step loop, so every
// read goes through thread-safe sources only: the transport's liveness
// view (its own locks) and the runner's atomic rejoin counter — never the
// runner's step-loop state.
func RegisterMetrics(reg *obs.Registry, r *Runner) {
	self := r.t.Rank()
	for q := 0; q < r.t.Size(); q++ {
		q := q
		labels := obs.Labels("rank", strconv.Itoa(self), "peer", strconv.Itoa(q))
		reg.GaugeFunc("aa_rank_up", "1 while the peer's link is active, 0 once failure detection holds it down or pending.",
			labels, func() float64 {
				if q != self && r.live != nil && r.live.PeerDown(q) {
					return 0
				}
				return 1
			})
		if q == self {
			continue
		}
		reg.GaugeFunc("aa_rank_heartbeat_age_seconds", "Seconds since the peer was last heard from (0 when unknown or in-process).",
			labels, func() float64 {
				if r.live == nil {
					return 0
				}
				return r.live.HeartbeatAge(q).Seconds()
			})
	}
	reg.CounterFunc("aa_rank_rejoins_total", "Peer rejoins integrated by this rank (a rejoining rank counts its own re-entry).",
		obs.Labels("rank", strconv.Itoa(self)), func() float64 {
			return float64(r.rejoinsN.Load())
		})
}
