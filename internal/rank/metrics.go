package rank

import (
	"strconv"

	"anytime/internal/obs"
	"anytime/internal/transport"
)

// RegisterMetrics exposes one rank's liveness plane on an obs Registry in
// Prometheus text form, under the aa_rank_* namespace. Scrapes run on the
// metrics server's goroutines concurrently with the step loop, so every
// read goes through thread-safe sources only: the transport's liveness
// view (its own locks) and the runner's atomic rejoin counter — never the
// runner's step-loop state.
func RegisterMetrics(reg *obs.Registry, r *Runner) {
	self := r.t.Rank()
	for q := 0; q < r.t.Size(); q++ {
		q := q
		labels := obs.Labels("rank", strconv.Itoa(self), "peer", strconv.Itoa(q))
		reg.GaugeFunc("aa_rank_up", "1 while the peer's link is active, 0 once failure detection holds it down or pending.",
			labels, func() float64 {
				if q != self && r.live != nil && r.live.PeerDown(q) {
					return 0
				}
				return 1
			})
		if q == self {
			continue
		}
		reg.GaugeFunc("aa_rank_heartbeat_age_seconds", "Seconds since the peer was last heard from (0 when unknown or in-process).",
			labels, func() float64 {
				if r.live == nil {
					return 0
				}
				return r.live.HeartbeatAge(q).Seconds()
			})
	}
	reg.CounterFunc("aa_rank_rejoins_total", "Peer rejoins integrated by this rank (a rejoining rank counts its own re-entry).",
		obs.Labels("rank", strconv.Itoa(self)), func() float64 {
			return float64(r.rejoinsN.Load())
		})

	// Step-ID gossip: where this rank believes each peer is in RC (the
	// transport's StepReporter plane — heartbeat piggyback over TCP).
	if sr, ok := transport.AsStepReporter(r.t); ok {
		for q := 0; q < r.t.Size(); q++ {
			q := q
			reg.GaugeFunc("aa_rank_peer_step", "RC step last heard from the peer (own step for peer == rank).",
				obs.Labels("rank", strconv.Itoa(self), "peer", strconv.Itoa(q)), func() float64 {
					return float64(sr.PeerStep(q))
				})
		}
	}

	// Anytime-quality telemetry: every read goes through the runner's
	// mutex-guarded snapshot (refreshed once per RC step), never the step
	// loop's own state.
	labels := obs.Labels("rank", strconv.Itoa(self))
	gauge := func(name, help string, get func(Telemetry) float64) {
		reg.GaugeFunc(name, help, labels, func() float64 { return get(r.Telemetry()) })
	}
	counter := func(name, help string, get func(Telemetry) float64) {
		reg.CounterFunc(name, help, labels, func() float64 { return get(r.Telemetry()) })
	}
	gauge("aa_rank_step", "Completed RC steps.", func(t Telemetry) float64 { return float64(t.Step) })
	gauge("aa_rank_step_busy_seconds", "Compute (ship build + relax) seconds of the last RC step; max/mean across ranks is the paper's Fig. 5 imbalance.",
		func(t Telemetry) float64 { return t.StepBusy.Seconds() })
	gauge("aa_rank_step_wall_seconds", "Full wall seconds of the last RC step including the exchange wait.",
		func(t Telemetry) float64 { return t.StepWall.Seconds() })
	counter("aa_rank_busy_seconds_total", "Cumulative compute seconds across all RC steps.",
		func(t Telemetry) float64 { return t.BusyTotal.Seconds() })
	gauge("aa_rank_rows", "Distance rows owned by this rank.", func(t Telemetry) float64 { return float64(t.Rows) })
	gauge("aa_rank_dirty_rows", "Rows still carrying unshipped updates.", func(t Telemetry) float64 { return float64(t.DirtyRows) })
	gauge("aa_rank_converged_rows", "Rows with no pending updates.", func(t Telemetry) float64 { return float64(t.ConvergedRows) })
	gauge("aa_rank_dirty_fraction", "DirtyRows/Rows: the row-granular convergence gap of the anytime solution.",
		func(t Telemetry) float64 { return t.DirtyFraction })
	gauge("aa_rank_frontier_density", "Change-frontier bit density within dirty rows (the masked-kernel cutover quantity).",
		func(t Telemetry) float64 { return t.FrontierDensity })
	gauge("aa_rank_bound_gap", "Fraction of all matrix entries still inside a change frontier — 0 at an exact fixpoint.",
		func(t Telemetry) float64 { return t.BoundGap })
	gauge("aa_rank_degraded", "1 while the run sits at a degraded fixpoint (ranks down).",
		func(t Telemetry) float64 {
			if t.Degraded {
				return 1
			}
			return 0
		})
	counter("aa_rank_degraded_steps_total", "RC steps taken in degraded mode.",
		func(t Telemetry) float64 { return float64(t.DegradedSteps) })
	counter("aa_rank_outage_episodes_total", "Distinct entries into degraded mode.",
		func(t Telemetry) float64 { return float64(t.OutageEpisodes) })
	counter("aa_rank_events_applied_total", "Dynamic events applied at step boundaries.",
		func(t Telemetry) float64 { return float64(t.EventsApplied) })
	gauge("aa_rank_down_ranks", "Size of the coordinator's current down set.",
		func(t Telemetry) float64 { return float64(t.DownRanks) })
}
