// The runner's fault plane: how one rank of a real multi-process run
// survives a peer's death and a restarted process re-enters the
// computation.
//
// Failure detection lives in the transport (heartbeat timeouts over TCP,
// explicit aborts in-process) and is surfaced through the optional
// transport.Liveness interface. The runner turns those per-endpoint
// observations into one consistent cluster view through the convergence
// allreduce it already runs every step:
//
//   - every rank's vote carries a bitmap of the peers it holds in the
//     pending-rejoin state;
//   - rank 0's decision broadcast carries the authoritative down bitmap
//     (so every survivor reports the same DownProcs), a degraded bit (the
//     votes reached a fixed point while ranks were down), and an
//     activation bitmap — set for a pending rank once rank 0 and every
//     voter agree its rejoin handshake completed;
//   - every rank activates the named links immediately after the decision
//     exchange, at the same step boundary, so the transports' step-marker
//     streams stay aligned; rank 0 then releases each rejoiner with the
//     go payload: the current partition checksum plus the journal of
//     dynamic events the rank missed.
//
// The rejoiner (Rejoin) rebuilds deterministically: base graph + journal
// replay reproduce the survivors' exact topology (checksum-verified), the
// local AASHRD01 recovery shard restores its rows (fresh IA as fallback),
// every row re-seeds its incident direct edges (the restore soundness
// repair), and everything ships in full — the in-process engine's rejoin
// protocol, whose dirty cascade provably reconverges to the sequential
// oracle. Rank 0's own death is fatal to the run (it coordinates votes
// and decisions); surviving coordinator loss needs an election and is out
// of scope.
package rank

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/transport"
)

// Decision flag bits of the convergence broadcast.
const (
	decContinue = 1 << 0 // more steps needed
	decDegraded = 1 << 1 // votes converged while ranks were down
	decCleanFix = 1 << 2 // exact converged fixpoint: clear change frontiers
)

// QueueEvents queues dynamic events for application: they ship to every
// live rank inside the next data exchange and apply at that step boundary.
// Events enter through rank 0 (the intake of the stream).
func (r *Runner) QueueEvents(evs ...change.Event) error {
	if r.t.Rank() != 0 {
		return fmt.Errorf("rank %d: dynamic events enter through rank 0", r.t.Rank())
	}
	r.queued = append(r.queued, evs...)
	return nil
}

// shipEvents appends rank 0's queued events to the outgoing data-exchange
// messages, one copy per live rank (rank 0 itself included, via the
// transport's local loopback, so every rank applies through the same
// inbox path).
func (r *Runner) shipEvents(out []transport.Message) ([]transport.Message, error) {
	if r.t.Rank() != 0 || len(r.queued) == 0 {
		return out, nil
	}
	evs := r.queued
	r.queued = nil
	body, err := transport.EncodeEvents(evs)
	if err != nil {
		return nil, fmt.Errorf("rank 0: encoding dynamic events: %w", err)
	}
	for q := 0; q < r.t.Size(); q++ {
		if r.down[q] {
			continue // a down rank catches up from the journal at rejoin
		}
		out = append(out, transport.Message{
			To: q, Tag: transport.TagNewVertexRow, Bytes: len(body), Payload: evs,
		})
	}
	return out, nil
}

// drainLiveness folds the transport's liveness observations into the
// runner: spans for the tracer, and (on rank 0) the authoritative down set
// plus the degraded-mode patience clock.
func (r *Runner) drainLiveness() {
	if r.live == nil {
		return
	}
	for _, ev := range r.live.TakeLiveness() {
		switch ev.Kind {
		case transport.LiveDown:
			r.stats.PeerDownEvents++
			if r.t.Rank() == 0 {
				r.down[ev.Rank] = true
				r.rejoinDeadline = time.Now().Add(r.cfg.RejoinWait)
			}
			r.span(obs.KindCrash, ev.Rank, 0)
			if r.slog != nil {
				r.slog.Warn("peer down", "rank", r.t.Rank(), "peer", ev.Rank,
					"step", r.stats.Steps, "episode", r.outages+1)
			}
		case transport.LiveRejoin:
			// Activation already handled in applyDecision (stats + marks);
			// the event is the transport echoing it back.
		}
	}
}

// span records a crash/rejoin span on the configured tracer (nil-safe).
func (r *Runner) span(kind obs.Kind, proc int, value int64) {
	tr := r.cfg.Obs
	if !tr.Enabled() {
		return
	}
	tr.Record(obs.Span{Kind: kind, Proc: int32(proc), Rank: int32(r.t.Rank()),
		Step: int32(r.stats.Steps), Wall: tr.Now(), Value: value})
}

// voteConvergence is the "no more updates in any processor" allreduce,
// extended into the cluster's liveness consensus: every rank sends
// [vote | pending bitmap] to rank 0, which ORs the votes, resolves
// activations, and broadcasts [flags | down bitmap | activate bitmap].
// A rank votes to continue while boundary rows are dirty or the transport
// still holds messages in flight (a delayed delivery carries updates
// nobody has seen).
func (r *Runner) voteConvergence() (bool, error) {
	r.drainLiveness()
	P := r.t.Size()
	B := (P + 7) / 8
	vote := byte(0)
	if r.rs.HasUpdate() || r.t.InFlight() > 0 {
		vote = 1
	}
	payload := make([]byte, 1+B)
	payload[0] = vote
	if r.live != nil {
		for q := 0; q < P; q++ {
			if r.live.PendingRejoin(q) {
				payload[1+q/8] |= 1 << (q % 8)
			}
		}
	}
	var out []transport.Message
	if r.t.Rank() != 0 {
		out = []transport.Message{{To: 0, Tag: transport.TagControl, Bytes: len(payload), Payload: payload}}
	}
	in, err := r.t.Exchange(out)
	if err != nil {
		return false, fmt.Errorf("rank %d: convergence gather: %w", r.t.Rank(), err)
	}
	rawDecision := vote
	pendingAll := make([]bool, P)
	if r.t.Rank() == 0 && r.live != nil {
		for q := 0; q < P; q++ {
			pendingAll[q] = r.live.PendingRejoin(q)
		}
	}
	for _, msg := range in {
		switch msg.Tag {
		case transport.TagControl:
			if r.t.Rank() != 0 {
				continue
			}
			b, ok := msg.Payload.([]byte)
			if !ok || len(b) == 0 {
				continue
			}
			if b[0] != 0 {
				rawDecision = 1
			}
			// Activation needs unanimity: every voter must hold the rank
			// pending (its rejoin handshake reached everyone).
			for q := 0; q < P; q++ {
				if pendingAll[q] && (len(b) <= 1+q/8 || b[1+q/8]&(1<<(q%8)) == 0) {
					pendingAll[q] = false
				}
			}
		case transport.TagBoundaryDV:
			// A delayed boundary delivery released during the vote: keep
			// it for the next relax phase. Its sender voted to continue
			// (the message counted as in flight), so no step is lost.
			r.carry = append(r.carry, msg.Payload.([]*dv.Delta)...)
		}
	}
	decision := make([]byte, 1+2*B)
	if r.t.Rank() == 0 {
		r.buildDecision(decision, rawDecision, pendingAll)
	}
	msg, err := r.t.Broadcast(0, transport.Message{Tag: transport.TagControl, Bytes: len(decision), Payload: decision})
	if err != nil {
		return false, fmt.Errorf("rank %d: convergence broadcast: %w", r.t.Rank(), err)
	}
	if r.t.Rank() != 0 {
		b, ok := msg.Payload.([]byte)
		if !ok || len(b) < 1+2*B {
			return false, fmt.Errorf("rank %d: malformed convergence decision (%d bytes)", r.t.Rank(), len(b))
		}
		decision = b
	}
	return r.applyDecision(decision)
}

// buildDecision assembles rank 0's decision payload: the continue flag
// (forced on by pending activations, the MinSteps floor, and the
// degraded-mode patience window), the degraded bit, the authoritative down
// bitmap, and the activation bitmap.
func (r *Runner) buildDecision(decision []byte, rawDecision byte, pendingAll []bool) {
	P := r.t.Size()
	B := (P + 7) / 8
	anyDown, anyActivate := false, false
	for q := 0; q < P; q++ {
		if pendingAll[q] {
			anyActivate = true
			decision[1+B+q/8] |= 1 << (q % 8)
		} else if r.down[q] {
			anyDown = true
			decision[1+q/8] |= 1 << (q % 8)
		}
	}
	flags := byte(0)
	if rawDecision != 0 {
		flags |= decContinue
	}
	if rawDecision == 0 && anyDown {
		// The survivors reached a fixed point of the live traffic while
		// ranks are missing: a degraded convergence. Keep idle-stepping
		// within the patience window so a supervised relaunch can rejoin
		// and lift the result back to exact.
		flags |= decDegraded
		if time.Now().Before(r.rejoinDeadline) {
			flags |= decContinue
		}
	}
	if anyActivate || r.stats.Steps < r.cfg.MinSteps {
		// Activation must reconverge before stopping; MinSteps is the
		// chaos-test floor.
		flags |= decContinue
	}
	if rawDecision == 0 && !anyDown && !anyActivate {
		// Exact fixpoint with every rank alive and no rejoin in flight:
		// the change-frontier epoch closes here. Every rank clears its
		// frontier masks at this same broadcast-decided boundary (see
		// applyDecision), re-anchoring the masked min-plus skip rule at a
		// provably exact state — the multi-process mirror of the engine's
		// clear-on-convergence. A delayed boundary delivery cannot slip
		// past this bit: its sender counted it as in flight and voted to
		// continue, forcing rawDecision nonzero.
		flags |= decCleanFix
	}
	decision[0] = flags
}

// applyDecision applies the coordinator's decision on every rank: mirror
// the down set, record a degraded convergence once per outage, activate
// rejoined peers at this boundary (rank 0 then releases them with the go
// payload), and derive whether to keep stepping.
func (r *Runner) applyDecision(decision []byte) (bool, error) {
	P := r.t.Size()
	B := (P + 7) / 8
	flags := decision[0]
	anyDown := false
	for q := 0; q < P; q++ {
		d := decision[1+q/8]&(1<<(q%8)) != 0
		r.down[q] = d
		anyDown = anyDown || d
	}
	if flags&decDegraded != 0 && !r.degraded {
		r.degraded = true
		r.outages++
		r.stats.DegradedConvergences++
		r.downSeen = r.DownProcs()
		r.span(obs.KindCrash, -1, int64(len(r.downSeen)))
		if r.slog != nil {
			r.slog.Warn("degraded convergence", "rank", r.t.Rank(), "step", r.stats.Steps,
				"episode", r.outages, "down", fmt.Sprint(r.downSeen))
		}
	}
	var activated []int
	for q := 0; q < P; q++ {
		if decision[1+B+q/8]&(1<<(q%8)) == 0 {
			continue
		}
		activated = append(activated, q)
		if r.live != nil {
			r.live.Activate(q)
		}
		r.down[q] = false
		r.rs.MarkRejoinShipAll(int32(q))
		r.stats.Rejoins++
		r.rejoinsN.Add(1)
		r.span(obs.KindRejoin, q, 0)
		if r.slog != nil {
			r.slog.Info("peer rejoined", "rank", r.t.Rank(), "peer", q,
				"step", r.stats.Steps, "episode", r.outages)
		}
	}
	if !anyDown && len(activated) > 0 {
		r.degraded = false
	}
	if r.t.Rank() == 0 && r.live != nil && len(activated) > 0 {
		payload, err := r.goPayload()
		if err != nil {
			return false, err
		}
		for _, q := range activated {
			if err := r.live.SendRejoinGo(q, payload); err != nil {
				return false, fmt.Errorf("rank 0: releasing rejoined rank %d: %w", q, err)
			}
		}
	}
	if flags&decCleanFix != 0 && r.rs != nil {
		// Coordinator-announced exact fixpoint: every rank resets its
		// change-frontier bitmasks at this same step boundary, so the
		// frontier epochs — and therefore every masked-sweep decision —
		// stay identical across all deployment shapes.
		r.rs.ClearFrontiers()
	}
	more := flags&decContinue != 0
	if !more {
		r.converged = flags&decDegraded == 0
	}
	return more, nil
}

// goPayload builds the rejoin-go state digest: the partition checksum the
// rejoiner must independently re-derive (base graph + journal replay), the
// coordinator's step counter, and the dynamic-event journal itself.
func (r *Runner) goPayload() ([]byte, error) {
	journal, err := transport.EncodeEvents(r.log.Journal())
	if err != nil {
		return nil, fmt.Errorf("rank 0: encoding rejoin journal: %w", err)
	}
	payload := make([]byte, 16, 16+len(journal))
	putU64(payload[0:], partChecksum(r.part))
	putU64(payload[8:], uint64(r.stats.Steps))
	return append(payload, journal...), nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Degraded reports whether the run is currently in degraded mode (a
// convergence fixed point was reached while ranks were down and no rejoin
// has completed yet).
func (r *Runner) Degraded() bool { return r.degraded }

// DownProcs returns the ranks currently held down by the coordinator's
// last decision — identical on every survivor.
func (r *Runner) DownProcs() []int {
	var procs []int
	for q, d := range r.down {
		if d {
			procs = append(procs, q)
		}
	}
	return procs
}

// DownSeen returns the DownProcs snapshot of the first degraded
// convergence — the outage report, preserved across the rejoin and
// reconvergence that follow.
func (r *Runner) DownSeen() []int { return r.downSeen }

// shardPath is this rank's recovery-shard file.
func (r *Runner) shardPath() string {
	return filepath.Join(r.cfg.ShardDir, fmt.Sprintf("aarank-%d.shard", r.t.Rank()))
}

// writeShard persists the rank's AASHRD01 recovery shard atomically
// (tmp + rename: a crash mid-write must not corrupt the previous shard).
// No-op unless ShardDir is set and the step cadence is due.
func (r *Runner) writeShard() {
	if r.cfg.ShardDir == "" || r.stats.Steps%r.cfg.ShardEvery != 0 {
		return
	}
	blob := core.EncodeShard(r.rs.Table(), r.stats.Steps)
	path := r.shardPath()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		// The shard is an optimization; the IA fallback covers a miss.
		if r.slog != nil {
			r.slog.Warn("shard write failed", "rank", r.t.Rank(), "step", r.stats.Steps, "err", err)
		}
		return
	}
	_ = os.Rename(tmp, path)
}

// Rejoin re-enters a computation as a restarted rank. The transport must
// be a rejoin endpoint (RejoinTCP / RejoinInproc) already holding pending
// links to the survivors. The sequence:
//
//  1. rebuild the base graph's deterministic partition (same inputs as
//     the original launch);
//  2. block until the coordinator activates this rank at a step boundary
//     and releases it with the go payload;
//  3. replay the dynamic-event journal from the payload, re-deriving the
//     survivors' exact topology and placement (checksum-verified);
//  4. restore local rows from the recovery shard — or recompute the IA
//     from scratch if the shard is missing or corrupt;
//  5. re-seed every row's incident direct edges and mark everything for
//     a full re-ship.
//
// The returned runner enters Run/Step exactly like a freshly launched
// rank; the survivors' forced reconvergence lifts the gathered matrix
// back to oracle-exact.
func Rejoin(t transport.Transport, cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	waiter, ok := t.(transport.RejoinWaiter)
	if !ok {
		return nil, fmt.Errorf("rank: transport is not a rejoin endpoint")
	}
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("rank: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("rank: invalid graph: %w", err)
	}
	P := t.Size()
	part, err := cfg.Partitioner.Partition(g, P)
	if err != nil {
		return nil, fmt.Errorf("rank: DD partitioning: %w", err)
	}
	if err := part.Validate(g); err != nil {
		return nil, fmt.Errorf("rank: DD partition invalid: %w", err)
	}
	wait := cfg.RejoinWait
	if wait <= 0 {
		wait = 60 * time.Second
	}
	payload, err := waiter.AwaitRejoinGo(wait)
	if err != nil {
		return nil, fmt.Errorf("rank %d: rejoin: %w", t.Rank(), err)
	}
	if len(payload) < 16 {
		return nil, fmt.Errorf("rank %d: malformed rejoin payload (%d bytes)", t.Rank(), len(payload))
	}
	wantSum := getU64(payload)
	coordSteps := getU64(payload[8:])
	journal, err := transport.DecodeEvents(payload[16:])
	if err != nil {
		return nil, fmt.Errorf("rank %d: rejoin journal: %w", t.Rank(), err)
	}
	r := newRunner(t, cfg, g, part)
	// Adopt the coordinator's step counter: the rejoiner's span step IDs,
	// step-reporter gossip, and shard headers line up with the survivors',
	// so a merged trace reads the outage as one timeline.
	r.stats.Steps = int(coordSteps)
	if r.stepper != nil {
		r.stepper.MarkStep(int64(r.stats.Steps))
	}
	if err := r.log.Replay(g, part, journal); err != nil {
		return nil, fmt.Errorf("rank %d: %w", t.Rank(), err)
	}
	if sum := partChecksum(part); sum != wantSum {
		return nil, fmt.Errorf("rank %d: rejoin state checksum %x != coordinator %x (divergent graph, seed, or partitioner)",
			t.Rank(), sum, wantSum)
	}
	me := int32(t.Rank())
	sub := graph.ExtractSub(g, part, me)
	n := g.NumVertices()

	var table *dv.Matrix
	if blob, rerr := os.ReadFile(r.shardPath()); rerr == nil {
		if tb, _, derr := core.DecodeShard(blob, n, func(owner int32) bool {
			return part.Part[owner] == me
		}); derr == nil {
			table = tb
		}
	}
	fresh := table == nil
	if fresh {
		table = dv.NewMatrix(n)
	}
	for _, v := range sub.Local {
		if !table.Has(v) {
			table.AddRow(v)
		}
	}
	if fresh {
		// No shard survived: recompute the local-paths IA from scratch.
		r.stats.IAOps = localIA(g, sub, table, cfg.Workers)
	}
	core.ReseedDirectEdges(table, g)
	r.rs = core.NewRankState(t.Rank(), g, part, sub, table, !cfg.NoLocalRefine, cfg.Workers, cfg.TileSize)
	r.rs.MarkAllShipAll()
	r.rejoinsN.Add(1)
	r.span(obs.KindRejoin, t.Rank(), 1)
	if r.slog != nil {
		r.slog.Info("rejoined computation", "rank", t.Rank(), "step", r.stats.Steps,
			"shard_restored", !fresh, "journal_events", len(journal))
	}
	return r, nil
}
