package rank

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/transport"
)

// TestMain doubles as the child entry point for the multi-process test:
// when AA_CHILD_RANK is set the binary joins a TCP mesh as one rank, runs
// to convergence, and exits without ever reaching the test framework.
func TestMain(m *testing.M) {
	if os.Getenv("AA_CHILD_RANK") != "" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

// childMain is one OS process of the integration run. The parent passes
// the peer manifest and graph parameters through the environment; rank 0
// writes the gathered distance matrix to AA_OUT. The optional fault-plane
// variables (heartbeats, shard dir, rejoin mode, step pacing, dynamic
// events, status reporting) drive the chaos tests.
func childMain() int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "child rank %s: %v\n", os.Getenv("AA_CHILD_RANK"), err)
		return 1
	}
	rankID, err := strconv.Atoi(os.Getenv("AA_CHILD_RANK"))
	if err != nil {
		return fail(fmt.Errorf("bad AA_CHILD_RANK: %w", err))
	}
	n, err := strconv.Atoi(os.Getenv("AA_GRAPH_N"))
	if err != nil {
		return fail(fmt.Errorf("bad AA_GRAPH_N: %w", err))
	}
	seed, err := strconv.ParseInt(os.Getenv("AA_GRAPH_SEED"), 10, 64)
	if err != nil {
		return fail(fmt.Errorf("bad AA_GRAPH_SEED: %w", err))
	}
	var peers []transport.Peer
	for i, addr := range strings.Split(os.Getenv("AA_MANIFEST"), ",") {
		peers = append(peers, transport.Peer{Rank: i, Addr: addr})
	}
	g, err := baGraph(n, seed)
	if err != nil {
		return fail(fmt.Errorf("graph: %w", err))
	}
	envDur := func(key string) time.Duration {
		d, _ := time.ParseDuration(os.Getenv(key))
		return d
	}
	envInt := func(key string) int {
		v, _ := strconv.Atoi(os.Getenv(key))
		return v
	}
	opts := transport.TCPOptions{
		MeshTimeout:       20 * time.Second,
		ExchangeTimeout:   20 * time.Second,
		HeartbeatInterval: envDur("AA_HB_INTERVAL"),
	}
	rejoining := os.Getenv("AA_REJOIN") == "1"
	var tr *transport.TCP
	if rejoining {
		tr, err = transport.RejoinTCP(peers, rankID, opts)
	} else {
		tr, err = transport.NewTCP(peers, rankID, opts)
	}
	if err != nil {
		return fail(fmt.Errorf("mesh: %w", err))
	}
	defer tr.Close()
	cfg := Config{
		Graph: g, Seed: seed,
		ShardDir:     os.Getenv("AA_SHARD_DIR"),
		MinSteps:     envInt("AA_MIN_STEPS"),
		StepThrottle: envDur("AA_STEP_THROTTLE"),
		RejoinWait:   envDur("AA_REJOIN_WAIT"),
	}
	// Observability plane (mirrors what aacluster wires for launched
	// ranks): a tracer behind AA_TRACE with periodic + final atomic JSONL
	// flushes, a per-rank obs HTTP server behind AA_OBS_ADDR, and
	// structured logs behind AA_LOG_FORMAT.
	var tracer *obs.Tracer
	tracePath := os.Getenv("AA_TRACE")
	obsAddr := os.Getenv("AA_OBS_ADDR")
	if tracePath != "" || obsAddr != "" {
		tracer = obs.NewTracer(0)
		cfg.Obs = tracer
	}
	if tracePath != "" {
		cfg.StepHook = func(tm Telemetry) {
			if tm.Step%16 == 0 {
				obs.WriteJSONLFile(tracePath, tracer.Spans())
			}
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		go func() {
			<-sig
			obs.WriteJSONLFile(tracePath, tracer.Spans())
			os.Exit(143)
		}()
	}
	if format := os.Getenv("AA_LOG_FORMAT"); format != "" {
		logger, err := obs.NewLogger(os.Stderr, format)
		if err != nil {
			return fail(err)
		}
		cfg.Log = logger
	}
	var r *Runner
	if rejoining {
		r, err = Rejoin(tr, cfg)
	} else {
		r, err = New(tr, cfg)
	}
	if err != nil {
		return fail(err)
	}
	if obsAddr != "" {
		reg := obs.NewRegistry()
		RegisterMetrics(reg, r)
		transport.RegisterMetrics(reg, tr, "tcp")
		srv, err := ServeObs(obsAddr, reg, tracer, os.Getenv("AA_PPROF") == "1")
		if err != nil {
			return fail(fmt.Errorf("obs server: %w", err))
		}
		defer srv.Close()
	}
	if rankID == 0 && !rejoining && os.Getenv("AA_EVENTS") == "1" {
		if err := r.QueueEvents(testEvents(n)...); err != nil {
			return fail(err)
		}
	}
	if _, err := r.Run(); err != nil {
		return fail(err)
	}
	if tracePath != "" {
		if err := obs.WriteJSONLFile(tracePath, tracer.Spans()); err != nil {
			return fail(fmt.Errorf("trace flush: %w", err))
		}
	}
	dist, err := r.GatherDistances()
	if err != nil {
		return fail(err)
	}
	if rankID == 0 {
		if err := writeDistances(os.Getenv("AA_OUT"), dist); err != nil {
			return fail(err)
		}
	}
	if dir := os.Getenv("AA_STATUS"); dir != "" {
		st := r.Stats()
		line := fmt.Sprintf("down=%s degraded=%d rejoins=%d converged=%t\n",
			intsCSV(r.DownSeen()), st.DegradedConvergences, st.Rejoins, r.Converged())
		path := fmt.Sprintf("%s/status-%d.txt", dir, rankID)
		if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
			return fail(err)
		}
	}
	return 0
}

func intsCSV(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// writeDistances encodes the n x n matrix as little-endian u32 cells.
func writeDistances(path string, dist [][]graph.Dist) error {
	if path == "" {
		return fmt.Errorf("AA_OUT not set")
	}
	buf := make([]byte, 0, 4*len(dist)*len(dist))
	for _, row := range dist {
		for _, d := range row {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
		}
	}
	return os.WriteFile(path, buf, 0o644)
}

func readDistances(path string, n int) ([][]graph.Dist, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) != 4*n*n {
		return nil, fmt.Errorf("distance file is %d bytes, want %d", len(buf), 4*n*n)
	}
	dist := make([][]graph.Dist, n)
	for v := range dist {
		dist[v] = make([]graph.Dist, n)
		for u := range dist[v] {
			dist[v][u] = graph.Dist(binary.LittleEndian.Uint32(buf[4*(v*len(dist)+u):]))
		}
	}
	return dist, nil
}

// freePorts reserves n distinct localhost ports by listening on :0 and
// closing (small reuse window, acceptable in tests).
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func tcpMesh(t *testing.T, n int) []transport.Transport {
	t.Helper()
	addrs := freePorts(t, n)
	peers := make([]transport.Peer, n)
	for i, a := range addrs {
		peers[i] = transport.Peer{Rank: i, Addr: a}
	}
	ts := make([]transport.Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = transport.NewTCP(peers, i, transport.TCPOptions{
				MeshTimeout:     10 * time.Second,
				ExchangeTimeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mesh setup: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

// The runner over real sockets (in-process TCP mesh) converges to the
// exact oracle, same as inproc.
func TestRunnerTCPMeshMatchesOracle(t *testing.T) {
	const n, P, seed = 80, 2, 5
	g := testGraph(t, n, seed)
	dist := runRanks(t, tcpMesh(t, P), func(int) Config {
		return Config{Graph: g, Seed: seed}
	})
	requireOracle(t, g, dist)
}

// The full acceptance test: N real OS processes, each one rank over TCP,
// converge a graph and produce distances bit-identical to the inproc
// backend (and therefore to the exact oracle).
func TestMultiProcessTCPBitIdenticalToInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	const n, P, seed = 100, 3, 9
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := freePorts(t, P)
	out := t.TempDir() + "/dist.bin"

	cmds := make([]*exec.Cmd, P)
	for r := 0; r < P; r++ {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"AA_CHILD_RANK="+strconv.Itoa(r),
			"AA_MANIFEST="+strings.Join(addrs, ","),
			"AA_GRAPH_N="+strconv.Itoa(n),
			"AA_GRAPH_SEED="+strconv.FormatInt(seed, 10),
			"AA_OUT="+out,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child rank %d: %v", r, err)
		}
	}
	got, err := readDistances(out, n)
	if err != nil {
		t.Fatal(err)
	}

	g := testGraph(t, n, seed)
	requireOracle(t, g, got)
	want := runRanks(t, inprocGroup(P), func(int) Config {
		return Config{Graph: g, Seed: seed}
	})
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if got[v][u] != want[v][u] {
				t.Fatalf("dist[%d][%d]: tcp processes %d, inproc %d", v, u, got[v][u], want[v][u])
			}
		}
	}
}
