package rank

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/graph"
)

// chaosEnv assembles the child environment for one rank of a chaos run.
func chaosEnv(rank int, addrs []string, n int, seed int64, extra ...string) []string {
	env := append(os.Environ(),
		"AA_CHILD_RANK="+strconv.Itoa(rank),
		"AA_MANIFEST="+strings.Join(addrs, ","),
		"AA_GRAPH_N="+strconv.Itoa(n),
		"AA_GRAPH_SEED="+strconv.FormatInt(seed, 10),
	)
	return append(env, extra...)
}

func startChild(t *testing.T, env []string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = env
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitForFile polls until the file exists and is non-empty.
func waitForFile(t *testing.T, path string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readStatus(t *testing.T, dir string, rank int) map[string]string {
	t.Helper()
	blob, err := os.ReadFile(fmt.Sprintf("%s/status-%d.txt", dir, rank))
	if err != nil {
		t.Fatalf("rank %d status: %v", rank, err)
	}
	st := map[string]string{}
	for _, f := range strings.Fields(string(blob)) {
		if k, v, ok := strings.Cut(f, "="); ok {
			st[k] = v
		}
	}
	return st
}

func requireSameMatrix(t *testing.T, label string, got, want [][]graph.Dist) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows vs %d", label, len(got), len(want))
	}
	for v := range want {
		for u := range want[v] {
			if got[v][u] != want[v][u] {
				t.Fatalf("%s: dist[%d][%d] = %d, want %d", label, v, u, got[v][u], want[v][u])
			}
		}
	}
}

// The headline robustness test: three real OS processes over TCP, one
// SIGKILLed mid-recombination. The survivors must detect the death via
// heartbeats, report a degraded convergence naming exactly the dead rank,
// keep idling inside the rejoin window, integrate the relaunched process
// (restored from its recovery shard), and produce a gathered distance
// matrix bit-identical to a run that never crashed.
func TestChaosSIGKILLRejoinBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	const n, P, seed = 100, 3, 9
	const victim = 1
	addrs := freePorts(t, P)
	dir := t.TempDir()
	out := dir + "/dist.bin"
	shardDir := dir + "/shards"
	if err := os.Mkdir(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	faultEnv := []string{
		"AA_OUT=" + out,
		"AA_STATUS=" + dir,
		"AA_SHARD_DIR=" + shardDir,
		"AA_HB_INTERVAL=50ms",
		"AA_MIN_STEPS=8",
		"AA_STEP_THROTTLE=50ms",
		"AA_REJOIN_WAIT=60s",
	}
	cmds := make([]*exec.Cmd, P)
	for r := 0; r < P; r++ {
		cmds[r] = startChild(t, chaosEnv(r, addrs, n, seed, faultEnv...))
	}
	// Kill the victim once its first recovery shard is on disk (so the
	// relaunch has state to restore) and it is a couple of steps into RC.
	waitForFile(t, fmt.Sprintf("%s/aarank-%d.shard", shardDir, victim), 20*time.Second)
	time.Sleep(120 * time.Millisecond)
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmds[victim].Wait(); err == nil {
		t.Fatal("SIGKILLed child exited cleanly")
	}
	// Give the survivors time to time out the victim's heartbeats and reach
	// a degraded convergence before the replacement shows up.
	time.Sleep(2 * time.Second)
	relaunched := startChild(t, chaosEnv(victim, addrs, n, seed, append(faultEnv, "AA_REJOIN=1")...))

	for r := 0; r < P; r++ {
		cmd := cmds[r]
		if r == victim {
			cmd = relaunched
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child rank %d: %v", r, err)
		}
	}

	for _, r := range []int{0, 2} {
		st := readStatus(t, dir, r)
		if st["down"] != strconv.Itoa(victim) {
			t.Fatalf("survivor %d outage report %q, want %q", r, st["down"], strconv.Itoa(victim))
		}
		if st["degraded"] == "0" {
			t.Fatalf("survivor %d never reached a degraded convergence: %v", r, st)
		}
		if st["rejoins"] == "0" {
			t.Fatalf("survivor %d integrated no rejoin: %v", r, st)
		}
		if st["converged"] != "true" {
			t.Fatalf("survivor %d did not fully reconverge: %v", r, st)
		}
	}
	if st := readStatus(t, dir, victim); st["converged"] != "true" {
		t.Fatalf("rejoined rank did not converge: %v", st)
	}

	got, err := readDistances(out, n)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, n, seed)
	requireOracle(t, g, got)
	// Bit-identical to a fault-free run of the same configuration.
	want := runRanks(t, inprocGroup(P), func(int) Config {
		return Config{Graph: g, Seed: seed}
	})
	requireSameMatrix(t, "crashed vs fault-free", got, want)
}

// Dynamic vertex additions streamed through rank 0 of a three-real-process
// TCP run must converge to the exact oracle of the grown graph —
// bit-identical to the single-process engine on the same topology.
func TestMultiProcessTCPDynamicEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	const n, P, seed = 100, 3, 9
	addrs := freePorts(t, P)
	out := t.TempDir() + "/dist.bin"
	cmds := make([]*exec.Cmd, P)
	for r := 0; r < P; r++ {
		cmds[r] = startChild(t, chaosEnv(r, addrs, n, seed, "AA_OUT="+out, "AA_EVENTS=1"))
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child rank %d: %v", r, err)
		}
	}
	// Re-derive the grown topology (base + journal) and its exact oracle.
	g2 := testGraph(t, n, seed)
	evs := testEvents(n)
	part2, err := Config{Graph: g2, Seed: seed}.withDefaults().Partitioner.Partition(g2, P)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.NewEventLog(P).Replay(g2, part2, evs); err != nil {
		t.Fatal(err)
	}
	got, err := readDistances(out, g2.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	requireOracle(t, g2, got)

	opts := core.NewOptions()
	opts.P = P
	opts.Seed = seed
	e, err := core.New(g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireSameMatrix(t, "tcp processes vs single-process engine", got, e.Distances())
}
