package rank

import (
	"sync"
	"testing"

	"anytime/internal/core"
	"anytime/internal/fault"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/sssp"
	"anytime/internal/transport"
)

// baGraph is the shared deterministic test graph: every process (parent
// or spawned child) that builds it from the same (n, seed) gets an
// identical graph.
func baGraph(n int, seed int64) (*graph.Graph, error) {
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{Min: 1, Max: 4}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}

func testGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := baGraph(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runRanks drives one runner per transport endpoint to convergence and
// returns rank 0's gathered distance matrix.
func runRanks(t *testing.T, ts []transport.Transport, mk func(r int) Config) [][]graph.Dist {
	t.Helper()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		dist [][]graph.Dist
		fail error
	)
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr transport.Transport) {
			defer wg.Done()
			err := func() error {
				r, err := New(tr, mk(i))
				if err != nil {
					return err
				}
				if _, err := r.Run(); err != nil {
					return err
				}
				all, err := r.GatherDistances()
				if err != nil {
					return err
				}
				if tr.Rank() == 0 {
					mu.Lock()
					dist = all
					mu.Unlock()
				}
				return nil
			}()
			if err != nil {
				mu.Lock()
				if fail == nil {
					fail = err
				}
				mu.Unlock()
			}
		}(i, tr)
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	if dist == nil {
		t.Fatal("rank 0 gathered nothing")
	}
	return dist
}

func requireOracle(t *testing.T, g *graph.Graph, got [][]graph.Dist) {
	t.Helper()
	want := sssp.APSP(g)
	for v := range want {
		for u := range want[v] {
			if got[v][u] != want[v][u] {
				t.Fatalf("dist[%d][%d] = %d, want %d", v, u, got[v][u], want[v][u])
			}
		}
	}
}

func inprocGroup(n int) []transport.Transport {
	group := transport.NewInprocGroup(n)
	ts := make([]transport.Transport, n)
	for i, tr := range group {
		ts[i] = tr
	}
	return ts
}

// The multi-process runner over the inproc backend must converge to the
// exact APSP oracle — and therefore bit-identically to the in-process
// Engine, which the same assertion pins on the engine side.
func TestRunnerInprocMatchesOracleAndEngine(t *testing.T) {
	const n, P, seed = 120, 3, 7
	g := testGraph(t, n, seed)
	dist := runRanks(t, inprocGroup(P), func(int) Config {
		return Config{Graph: g, Seed: seed}
	})
	requireOracle(t, g, dist)

	// The in-process engine on the same graph/seed/P: identical converged
	// distances, row for row.
	opts := core.NewOptions()
	opts.P = P
	opts.Seed = seed
	opts.Workers = 2
	e, err := core.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	engineDist := e.Distances()
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if dist[v][u] != engineDist[v][u] {
				t.Fatalf("dist[%d][%d]: runner %d, engine %d", v, u, dist[v][u], engineDist[v][u])
			}
		}
	}
}

// Injected faults above the transport (drops, duplicates, delays,
// corruption with a resend budget) must only delay convergence, never
// change the result: the re-mark/re-ship recovery path heals every lost
// update.
func TestRunnerWithInjectedFaultsStaysExact(t *testing.T) {
	const n, P, seed = 90, 3, 11
	g := testGraph(t, n, seed)
	group := inprocGroup(P)
	ts := make([]transport.Transport, P)
	reships := 0
	for i, tr := range group {
		inj, err := fault.NewInjector(fault.Plan{
			Seed:          41,
			DropRate:      0.25,
			DuplicateRate: 0.05,
			DelayRate:     0.10,
			CorruptRate:   0.10,
			ResendBudget:  1, // no retries: every drop/corrupt abandons the message
		}, P)
		if err != nil {
			t.Fatal(err)
		}
		ts[i] = transport.WithFaults(tr, inj)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var dist [][]graph.Dist
	var fail error
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := New(ts[i], Config{Graph: g, Seed: seed})
			if err == nil {
				_, err = r.Run()
			}
			var all [][]graph.Dist
			if err == nil {
				all, err = r.GatherDistances()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil && fail == nil {
				fail = err
			}
			if i == 0 {
				dist = all
			}
			if r != nil {
				reships += r.Stats().Reships
			}
		}(i)
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	requireOracle(t, g, dist)
	if reships == 0 {
		t.Fatal("fault plan injected no abandoned messages; the recovery path was not exercised")
	}
}

// A rank whose partition disagrees with the root must refuse to run.
func TestRunnerPartitionChecksumMismatch(t *testing.T) {
	const P = 2
	g := testGraph(t, 40, 3)
	ts := inprocGroup(P)
	var wg sync.WaitGroup
	errs := make([]error, P)
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(3)
			if i == 1 {
				seed = 4 // diverging partitioner seed
			}
			_, errs[i] = New(ts[i], Config{Graph: g, Seed: seed})
		}(i)
	}
	wg.Wait()
	if errs[1] == nil {
		t.Fatal("diverging rank 1 did not detect the checksum mismatch")
	}
}
