package rank

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"anytime/internal/obs"
	"anytime/internal/transport"
)

// The per-step telemetry refresh is on the rank hot path and must not
// allocate: the quality gauges are free when nobody scrapes, and cheap
// when someone does. Gate test for `make obs-cluster-check`.
func TestRankTelemetryZeroAlloc(t *testing.T) {
	g := testGraph(t, 60, 3)
	tr := transport.NewInprocGroup(1)[0]
	r, err := New(tr, Config{Graph: g, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.updateTelemetry(time.Millisecond, 2*time.Millisecond)
		_ = r.Telemetry()
	})
	if allocs != 0 {
		t.Fatalf("telemetry refresh allocates %.1f per step; the rank hot path must stay zero-alloc", allocs)
	}
}

// After a clean convergence every rank's snapshot reports a quiescent
// anytime state: zero dirty rows, zero bound gap, all owned rows
// converged, and a positive step/busy record.
func TestRunnerTelemetrySnapshot(t *testing.T) {
	const n, P, seed = 120, 2, 7
	g := testGraph(t, n, seed)
	ts := inprocGroup(P)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		snaps = make([]Telemetry, P)
		hooks = make([]int, P)
		fail  error
	)
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr transport.Transport) {
			defer wg.Done()
			r, err := New(tr, Config{Graph: g, Seed: seed, StepHook: func(Telemetry) {
				mu.Lock()
				hooks[i]++
				mu.Unlock()
			}})
			if err == nil {
				_, err = r.Run()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fail = err
				return
			}
			snaps[i] = r.Telemetry()
		}(i, tr)
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	totalRows := 0
	for i, s := range snaps {
		if s.Rank != i {
			t.Errorf("rank %d: snapshot says rank %d", i, s.Rank)
		}
		if s.Step <= 0 {
			t.Errorf("rank %d: step %d, want > 0", i, s.Step)
		}
		if int(s.Step) != hooks[i] {
			t.Errorf("rank %d: %d steps but %d StepHook calls", i, s.Step, hooks[i])
		}
		if s.Rows <= 0 {
			t.Errorf("rank %d: rows %d, want > 0", i, s.Rows)
		}
		if s.DirtyRows != 0 || s.DirtyFraction != 0 {
			t.Errorf("rank %d: %d dirty rows (fraction %g) after convergence", i, s.DirtyRows, s.DirtyFraction)
		}
		if s.ConvergedRows != s.Rows {
			t.Errorf("rank %d: %d/%d rows converged", i, s.ConvergedRows, s.Rows)
		}
		if s.BoundGap != 0 {
			t.Errorf("rank %d: bound gap %g at exact fixpoint", i, s.BoundGap)
		}
		if s.BusyTotal <= 0 {
			t.Errorf("rank %d: busy total %v, want > 0", i, s.BusyTotal)
		}
		if s.Degraded || s.DownRanks != 0 {
			t.Errorf("rank %d: degraded=%t down=%d on a healthy run", i, s.Degraded, s.DownRanks)
		}
		totalRows += s.Rows
	}
	if totalRows != n {
		t.Errorf("ranks own %d rows total, want %d", totalRows, n)
	}
}

// The cluster observability acceptance test: three real OS processes each
// serve their own /metrics; the parent scrapes them with the HTTP
// aggregator and must see a well-formed merged exposition carrying
// rank-labeled per-rank series plus the computed cross-rank series
// (aa_cluster_ranks_up, aa_step_imbalance) while the ranks are live.
func TestClusterScrapeMergedMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	const n, P, seed = 100, 3, 9
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ports := freePorts(t, 2*P)
	addrs, obsAddrs := ports[:P], ports[P:]
	out := t.TempDir() + "/dist.bin"

	cmds := make([]*exec.Cmd, P)
	for r := 0; r < P; r++ {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"AA_CHILD_RANK="+strconv.Itoa(r),
			"AA_MANIFEST="+strings.Join(addrs, ","),
			"AA_GRAPH_N="+strconv.Itoa(n),
			"AA_GRAPH_SEED="+strconv.FormatInt(seed, 10),
			"AA_OUT="+out,
			"AA_OBS_ADDR="+obsAddrs[r],
			"AA_MIN_STEPS=300",
			"AA_STEP_THROTTLE=20ms",
			"AA_LOG_FORMAT=json",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	defer func() {
		for r, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				t.Errorf("child rank %d: %v", r, err)
			}
		}
	}()

	agg := obs.NewHTTPAggregator(obsAddrs, 2*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("aggregator never saw all ranks up with live step series")
		}
		agg.Scrape(context.Background())
		var buf bytes.Buffer
		if _, err := agg.WriteTo(&buf); err != nil {
			t.Fatalf("render merged metrics: %v", err)
		}
		flat, err := flatSamples(buf.Bytes())
		if err != nil {
			t.Fatalf("merged exposition does not parse: %v\n%s", err, buf.String())
		}
		if ok := checkMerged(t, flat, P); ok {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// flatSamples parses a Prometheus text exposition into name{labels} -> value.
func flatSamples(text []byte) (map[string]float64, error) {
	fams, err := obs.ParseFamilies(bytes.NewReader(text))
	if err != nil {
		return nil, err
	}
	flat := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.Samples {
			flat[s.Key()] = s.Value
		}
	}
	return flat, nil
}

// checkMerged reports whether the merged exposition shows the whole
// cluster live; it only fails the test for inconsistencies that should
// never appear (imbalance < 1).
func checkMerged(t *testing.T, flat map[string]float64, P int) bool {
	t.Helper()
	if flat["aa_cluster_ranks_up"] != float64(P) {
		return false
	}
	for r := 0; r < P; r++ {
		step, ok := flat[fmt.Sprintf(`aa_rank_step{rank="%d"}`, r)]
		if !ok || step <= 0 {
			return false
		}
		if _, ok := flat[fmt.Sprintf(`aa_rank_step_busy_seconds{rank="%d"}`, r)]; !ok {
			return false
		}
	}
	imb, ok := flat["aa_step_imbalance"]
	if !ok {
		return false
	}
	if imb < 1 {
		t.Fatalf("aa_step_imbalance = %g, want >= 1 (max/mean)", imb)
	}
	if _, ok := flat["aa_cluster_dirty_fraction"]; !ok {
		return false
	}
	return true
}
