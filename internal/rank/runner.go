// Package rank drives the anytime-anywhere engine as one rank of a
// multi-process run: each OS process owns exactly one of the P parts and
// talks to its peers over a transport.Transport (the in-process test
// fabric or the TCP mesh). The runner reuses the same DD partitioners,
// IA sweeps, and RC relax/refine machinery as the in-process Engine
// (through core.RankState), so a converged multi-process run produces the
// exact APSP solution — bit-identical to the single-process engine.
//
// Every rank computes the partition deterministically from the shared
// graph and seed; a checksum broadcast verifies all processes agree before
// any distance state moves.
package rank

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/partition"
	"anytime/internal/sssp"
	"anytime/internal/transport"
)

// Config configures one rank's run.
type Config struct {
	// Graph is the shared input graph; every process must construct an
	// identical copy (same generator, same seed).
	Graph *graph.Graph
	// Partitioner runs the DD phase (default: Multilevel with Seed).
	// It must be deterministic — every rank partitions independently and
	// the results are checksum-verified.
	Partitioner partition.Partitioner
	// Seed feeds the default partitioner.
	Seed int64
	// Workers is the per-rank relax/IA worker count (default 2).
	Workers int
	// TileSize is the blocked-refinement pivot tile (default 32).
	TileSize int
	// NoLocalRefine disables the Floyd–Warshall-style local refinement.
	NoLocalRefine bool
	// MaxSteps bounds Run (default 10_000).
	MaxSteps int

	// ShardDir, when set, makes the rank write its CRC'd recovery shard
	// (the AASHRD01 format of the in-process simulator) to
	// <ShardDir>/aarank-<rank>.shard every ShardEvery steps — the local
	// state a relaunched process restores from at rejoin.
	ShardDir string
	// ShardEvery is the shard cadence in RC steps (default 1).
	ShardEvery int
	// MinSteps forces the convergence decision to "continue" while fewer
	// steps have run — a chaos-test hook guaranteeing a kill window; 0
	// disables it.
	MinSteps int
	// StepThrottle sleeps this long at the end of every step (paces the
	// degraded idle loop and widens chaos-test windows); 0 disables it.
	StepThrottle time.Duration
	// RejoinWait is how long rank 0 keeps the survivors idle-stepping in
	// degraded mode waiting for a dead rank to rejoin before letting the
	// run stop degraded (default 0: stop at the first degraded
	// convergence). Only rank 0's clock is consulted, so every rank stops
	// on the same decision.
	RejoinWait time.Duration
	// Obs records crash/rejoin spans on this tracer (nil-safe). When set,
	// Step also records per-phase spans (ship, exchange, relax, whole
	// step), each stamped with this rank and the RC step ID — the raw
	// material of the cluster-merged distributed trace.
	Obs *obs.Tracer
	// Log receives structured liveness/step events (peer deaths, degraded
	// entries, rejoins, shard failures) with rank/step/episode attributes;
	// nil disables logging.
	Log *slog.Logger
	// StepHook, when set, is invoked at the end of every Step with the
	// fresh telemetry snapshot — the periodic trace-flush and test hook.
	// It runs on the step loop; keep it cheap.
	StepHook func(Telemetry)
}

func (c Config) withDefaults() Config {
	if c.Partitioner == nil {
		c.Partitioner = partition.Multilevel{Seed: c.Seed}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.TileSize <= 0 {
		c.TileSize = 32
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10_000
	}
	if c.ShardEvery <= 0 {
		c.ShardEvery = 1
	}
	return c
}

// Stats counts one rank's work.
type Stats struct {
	Steps    int
	IAOps    int64
	RelaxOps int64
	Reships  int // failed boundary messages re-marked for re-shipping

	DegradedConvergences int // convergence votes that passed with ranks down
	Rejoins              int // peers re-integrated after a death
	PeerDownEvents       int // peer-death notifications observed
	EventsApplied        int // dynamic events applied
}

// Runner is one rank of a multi-process run.
type Runner struct {
	t    transport.Transport
	cfg  Config
	g    *graph.Graph
	part *graph.Partition
	rs   *core.RankState

	// carry holds boundary-DV deltas that surfaced outside the data
	// exchange (a delayed delivery released during the convergence vote);
	// they feed the next relax phase instead of being dropped.
	carry     []*dv.Delta
	converged bool
	stats     Stats

	// Liveness plane (nil live = transport has no failure detection and
	// a peer death is fatal, the pre-liveness behavior).
	live     transport.Liveness
	log      *core.EventLog
	down     []bool // rank 0's authoritative view, mirrored by the decision broadcast
	degraded bool
	// downSeen snapshots DownProcs at the first degraded convergence (the
	// outage report that survives reconvergence).
	downSeen []int
	// queued dynamic events, rank 0 only; shipped inside the next data
	// exchange.
	queued []change.Event
	// rejoinDeadline is rank 0's degraded-mode stop clock (zero until the
	// first death).
	rejoinDeadline time.Time
	// rejoinsN mirrors Stats.Rejoins for concurrent readers (the metrics
	// scrape goroutine must not touch stats).
	rejoinsN atomic.Int64

	// Observability plane: the optional step reporter gossips this rank's
	// RC step to peers (heartbeat piggyback over TCP); telem is the
	// scrape-safe snapshot refreshed each step under tmu.
	stepper       transport.StepReporter
	slog          *slog.Logger
	busyTotal     time.Duration
	degradedSteps int
	outages       int
	tmu           sync.Mutex
	telem         Telemetry
}

// New runs the DD and IA phases for this process's rank: partition the
// graph (verifying cross-process agreement), extract the local sub-graph,
// and compute the local APSP. The transport's rank/size define which part
// this process owns and P.
func New(t transport.Transport, cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("rank: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("rank: invalid graph: %w", err)
	}
	P := t.Size()
	if g.NumVertices() < P {
		return nil, fmt.Errorf("rank: %d vertices < P=%d", g.NumVertices(), P)
	}
	part, err := cfg.Partitioner.Partition(g, P)
	if err != nil {
		return nil, fmt.Errorf("rank: DD partitioning: %w", err)
	}
	if err := part.Validate(g); err != nil {
		return nil, fmt.Errorf("rank: DD partition invalid: %w", err)
	}
	if err := verifyPartition(t, part); err != nil {
		return nil, err
	}
	r := newRunner(t, cfg, g, part)
	sub := graph.ExtractSub(g, part, int32(t.Rank()))

	n := g.NumVertices()
	table := dv.NewMatrix(n)
	for _, v := range sub.Local {
		table.AddRow(v)
	}
	r.stats.IAOps = localIA(g, sub, table, cfg.Workers)
	r.rs = core.NewRankState(t.Rank(), g, part, sub, table, !cfg.NoLocalRefine, cfg.Workers, cfg.TileSize)
	return r, nil
}

// newRunner wires the shared runner state, discovering the transport's
// optional liveness plane.
func newRunner(t transport.Transport, cfg Config, g *graph.Graph, part *graph.Partition) *Runner {
	r := &Runner{t: t, cfg: cfg, g: g, part: part,
		log:  core.NewEventLog(t.Size()),
		down: make([]bool, t.Size()),
		slog: cfg.Log,
	}
	r.live, _ = transport.AsLiveness(t)
	r.stepper, _ = transport.AsStepReporter(t)
	return r
}

// localIA computes the rank's initial approximation: every local row's
// single-source distances restricted to local-only paths.
func localIA(g *graph.Graph, sub *graph.Sub, table *dv.Matrix, workers int) int64 {
	rows := table.Rows()
	sources := make([]int32, len(rows))
	slices := make([][]graph.Dist, len(rows))
	hops := make([][]int32, len(rows))
	for i, row := range rows {
		sources[i] = row.Owner
		slices[i] = row.D
		hops[i] = row.NH
	}
	if graph.Stats(g).UnitWeights {
		return sssp.MultiSourceHopsBFS(g, sources, slices, hops, sub.IsLocal, workers)
	}
	return sssp.MultiSourceHops(g, sources, slices, hops, sub.IsLocal, workers)
}

// verifyPartition checks that every process computed the same vertex
// assignment: rank 0 broadcasts an FNV-1a checksum of its partition and
// every rank compares. A mismatch means the processes are not running the
// same graph/seed/partitioner and must not exchange distance state.
func verifyPartition(t transport.Transport, part *graph.Partition) error {
	sum := partChecksum(part)
	buf := make([]byte, 8)
	if t.Rank() == 0 {
		for i := 0; i < 8; i++ {
			buf[i] = byte(sum >> (8 * i))
		}
	}
	msg, err := t.Broadcast(0, transport.Message{Tag: transport.TagControl, Bytes: len(buf), Payload: buf})
	if err != nil {
		return fmt.Errorf("rank: partition checksum broadcast: %w", err)
	}
	if t.Rank() == 0 {
		return nil
	}
	root := msg.Payload.([]byte)
	var rootSum uint64
	for i := 0; i < 8; i++ {
		rootSum |= uint64(root[i]) << (8 * i)
	}
	if rootSum != sum {
		return fmt.Errorf("rank %d: partition checksum %x != root %x (divergent graph, seed, or partitioner)",
			t.Rank(), sum, rootSum)
	}
	return nil
}

func partChecksum(p *graph.Partition) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	mix(byte(p.K))
	for _, pt := range p.Part {
		mix(byte(pt))
		mix(byte(pt >> 8))
		mix(byte(pt >> 16))
		mix(byte(pt >> 24))
	}
	return h
}

// Step performs one recombination step across all processes: ship dirty
// boundary deltas (and, from rank 0, this step's queued dynamic events),
// exchange, relax, apply events, re-mark failed deliveries, write the
// recovery shard, and vote on convergence. It returns true while more
// steps are needed.
func (r *Runner) Step() (bool, error) {
	tr := r.cfg.Obs
	rank := int32(r.t.Rank())
	stepID := int32(r.stats.Steps)
	stepW := tr.Now()
	stepStart := time.Now()

	groups, _ := r.rs.ShipDeltas()
	var out []transport.Message
	shipBytes := 0
	for q, deltas := range groups {
		if len(deltas) == 0 {
			continue
		}
		if r.down[q] {
			// Shipping to a known-down rank would bounce back through
			// TakeFailed and re-dirty the rows forever, blocking the
			// degraded convergence. Drop it: activation's
			// MarkRejoinShipAll re-ships everything the rank missed.
			continue
		}
		n := transport.EncodedDeltaBytes(deltas)
		shipBytes += n
		out = append(out, transport.Message{
			To:      q,
			Tag:     transport.TagBoundaryDV,
			Bytes:   n,
			Payload: deltas,
		})
	}
	out, err := r.shipEvents(out)
	if err != nil {
		return false, err
	}
	shipDur := time.Since(stepStart)
	if tr.Enabled() {
		tr.Record(obs.Span{Kind: obs.KindRCShip, Proc: rank, Rank: rank, Step: stepID,
			Wall: stepW, WallDur: shipDur, Value: int64(shipBytes)})
	}

	exW := tr.Now()
	exStart := time.Now()
	in, err := r.t.Exchange(out)
	if err != nil {
		return false, fmt.Errorf("rank %d: exchange: %w", r.t.Rank(), err)
	}
	if tr.Enabled() {
		tr.Record(obs.Span{Kind: obs.KindRCExchange, Proc: rank, Rank: rank, Step: stepID,
			Wall: exW, WallDur: time.Since(exStart), Value: int64(len(in))})
	}
	ext := r.carry
	r.carry = nil
	var events []change.Event
	for _, msg := range in {
		switch msg.Tag {
		case transport.TagBoundaryDV:
			ext = append(ext, msg.Payload.([]*dv.Delta)...)
		case transport.TagNewVertexRow:
			if evs, ok := msg.Payload.([]change.Event); ok {
				events = append(events, evs...)
			}
		}
	}

	relaxW := tr.Now()
	relaxStart := time.Now()
	ops := r.rs.RelaxPhase(ext)
	r.stats.RelaxOps += ops
	relaxDur := time.Since(relaxStart)
	if tr.Enabled() {
		tr.Record(obs.Span{Kind: obs.KindRCRelax, Proc: rank, Rank: rank, Step: stepID,
			Wall: relaxW, WallDur: relaxDur, Value: ops})
	}
	if failed := r.t.TakeFailed(); len(failed) > 0 {
		r.stats.Reships += len(failed)
		r.rs.ReMarkFailed(failed)
	}
	if len(events) > 0 {
		// Every live rank received the identical list at this boundary;
		// down ranks catch up from the journal at rejoin.
		if err := r.rs.ApplyEvents(r.log, events); err != nil {
			return false, fmt.Errorf("rank %d: dynamic events: %w", r.t.Rank(), err)
		}
		r.stats.EventsApplied += len(events)
	}
	r.stats.Steps++
	if r.stepper != nil {
		r.stepper.MarkStep(int64(r.stats.Steps))
	}
	r.writeShard()
	more, err := r.voteConvergence()
	if err != nil {
		return false, err
	}
	if tr.Enabled() {
		tr.Record(obs.Span{Kind: obs.KindRCStep, Proc: rank, Rank: rank, Step: stepID,
			Wall: stepW, WallDur: time.Since(stepStart), Value: ops})
	}
	r.updateTelemetry(shipDur+relaxDur, time.Since(stepStart))
	if hook := r.cfg.StepHook; hook != nil {
		hook(r.Telemetry())
	}
	if r.cfg.StepThrottle > 0 {
		time.Sleep(r.cfg.StepThrottle)
	}
	return more, nil
}

// Run steps until convergence (or MaxSteps) and returns the steps taken.
func (r *Runner) Run() (int, error) {
	steps := 0
	for steps < r.cfg.MaxSteps {
		more, err := r.Step()
		steps++
		if err != nil {
			return steps, err
		}
		if !more {
			return steps, nil
		}
	}
	return steps, fmt.Errorf("rank %d: no convergence after %d steps", r.t.Rank(), steps)
}

// Converged reports whether the last Step's vote declared convergence
// (with every rank up — a degraded stop is not convergence).
func (r *Runner) Converged() bool { return r.converged }

// Stats returns this rank's work counters.
func (r *Runner) Stats() Stats { return r.stats }

// Sub returns this rank's sub-graph structure (rebuilt after dynamic
// events).
func (r *Runner) Sub() *graph.Sub { return r.rs.Sub() }

// Partition returns the (verified) vertex assignment.
func (r *Runner) Partition() *graph.Partition { return r.part }

// Table returns this rank's DV matrix (rows for local vertices only).
func (r *Runner) Table() *dv.Matrix { return r.rs.Table() }

// GatherDistances collects the full n x n distance matrix at rank 0
// (rows indexed by global vertex ID); other ranks return nil. It is a
// collective, typically called once after convergence.
func (r *Runner) GatherDistances() ([][]graph.Dist, error) {
	var out []transport.Message
	if r.t.Rank() != 0 {
		deltas := make([]*dv.Delta, 0, r.rs.Table().Len())
		for _, row := range r.rs.Table().Rows() {
			deltas = append(deltas, row.FullDelta())
		}
		out = []transport.Message{{
			To:      0,
			Tag:     transport.TagMigrateRows,
			Bytes:   transport.EncodedDeltaBytes(deltas),
			Payload: deltas,
		}}
	}
	in, err := r.t.Exchange(out)
	if err != nil {
		return nil, fmt.Errorf("rank %d: gather: %w", r.t.Rank(), err)
	}
	if r.t.Rank() != 0 {
		return nil, nil
	}
	n := r.g.NumVertices()
	all := make([][]graph.Dist, n)
	for _, row := range r.rs.Table().Rows() {
		all[row.Owner] = append([]graph.Dist(nil), row.D...)
	}
	for _, msg := range in {
		if msg.Tag != transport.TagMigrateRows {
			continue
		}
		for _, d := range msg.Payload.([]*dv.Delta) {
			if int(d.Owner) >= n || d.Lo != 0 || len(d.D) != n {
				return nil, fmt.Errorf("rank 0: gathered malformed row (owner=%d lo=%d len=%d)", d.Owner, d.Lo, len(d.D))
			}
			all[d.Owner] = append([]graph.Dist(nil), d.D...)
		}
	}
	for v := 0; v < n; v++ {
		if all[v] == nil {
			return nil, fmt.Errorf("rank 0: gathered no row for vertex %d", v)
		}
	}
	return all, nil
}

// Close releases the transport.
func (r *Runner) Close() error { return r.t.Close() }
