package rank

import (
	"net"
	"net/http"
	"net/http/pprof"

	"anytime/internal/obs"
)

// ObsServer is one rank's local observability export: /metrics (Prometheus
// text), /trace.jsonl (the tracer's retained spans), and optionally
// /debug/pprof. Every rank process serves its own on the obs port declared
// in the mesh manifest; the aacluster aggregator scrapes and merges them.
type ObsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeObs starts the export server on addr (":0" picks a free port; Addr
// reports the bound address). reg and tracer may be nil — the matching
// endpoints then serve empty bodies, keeping scrape loops simple.
func ServeObs(addr string, reg *obs.Registry, tracer *obs.Tracer, enablePprof bool) (*ObsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WriteTo(w)
		}
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if tracer != nil {
			obs.WriteJSONL(w, tracer.Spans())
		}
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &ObsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *ObsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *ObsServer) Close() error { return s.srv.Close() }
