package change

import (
	"testing"
)

func validBatch() *VertexBatch {
	return &VertexBatch{
		NumVertices: 3,
		Internal:    []InternalEdge{{A: 0, B: 1, Weight: 2}},
		External:    []ExternalEdge{{New: 2, Existing: 5, Weight: 1}},
		Pending:     []PendingEdge{{New: 1, EarlierBatchVertex: 0, Weight: 3}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validBatch().Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*VertexBatch){
		func(b *VertexBatch) { b.NumVertices = -1 },
		func(b *VertexBatch) { b.Internal[0].A = 5 },
		func(b *VertexBatch) { b.Internal[0].B = -1 },
		func(b *VertexBatch) { b.Internal[0].B = b.Internal[0].A },
		func(b *VertexBatch) { b.Internal[0].Weight = 0 },
		func(b *VertexBatch) { b.External[0].New = 3 },
		func(b *VertexBatch) { b.External[0].Existing = 10 },
		func(b *VertexBatch) { b.External[0].Existing = -1 },
		func(b *VertexBatch) { b.External[0].Weight = -1 },
		func(b *VertexBatch) { b.Pending[0].New = 9 },
		func(b *VertexBatch) { b.Pending[0].EarlierBatchVertex = -1 },
		func(b *VertexBatch) { b.Pending[0].Weight = 0 },
	}
	for i, mutate := range cases {
		b := validBatch()
		mutate(b)
		if err := b.Validate(10); err == nil {
			t.Errorf("case %d: expected validation failure", i)
		}
	}
}

func TestNumEdges(t *testing.T) {
	if n := validBatch().NumEdges(); n != 3 {
		t.Fatalf("NumEdges = %d", n)
	}
}

func TestBatchGraph(t *testing.T) {
	b := validBatch()
	b.Internal = append(b.Internal, InternalEdge{A: 0, B: 1, Weight: 9}) // duplicate, skipped
	g := b.BatchGraph()
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Fatalf("batch graph %d/%d", g.NumVertices(), g.NumEdges())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 2 {
		t.Fatalf("weight = %d (first writer wins)", w)
	}
}
