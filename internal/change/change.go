// Package change defines the dynamic-graph change descriptors exchanged
// between workload generators and the anytime-anywhere engine: batches of
// vertex additions (the paper's focus) and the edge addition/deletion and
// vertex deletion operations the methodology composes with.
package change

import (
	"fmt"

	"anytime/internal/graph"
)

// InternalEdge is an edge between two new vertices of the same batch,
// addressed by batch-local indices in [0, NumVertices).
type InternalEdge struct {
	A, B   int32 // batch-local indices
	Weight graph.Weight
}

// ExternalEdge connects a new vertex (batch-local index) to an existing
// vertex of the graph (global ID).
type ExternalEdge struct {
	New      int32 // batch-local index of the new vertex
	Existing int32 // global ID of the existing endpoint
	Weight   graph.Weight
}

// PendingEdge connects a new vertex of this batch to a vertex that was
// added by an *earlier batch of the same stream*, identified by its
// stream-local index (its batch-local index in the original, unsplit
// batch). The engine resolves the index through the stream's
// local->global map when the batch is applied.
type PendingEdge struct {
	New                int32 // batch-local index in this batch
	EarlierBatchVertex int32 // stream-local index of the earlier new vertex
	Weight             graph.Weight
}

// VertexBatch is one dynamic vertex-addition event: a set of new vertices
// together with the edges among them and the edges tying them to the
// existing graph. Global IDs for the new vertices are assigned by the
// engine at application time (existing N .. N+NumVertices-1, in batch-local
// order).
type VertexBatch struct {
	NumVertices int
	Internal    []InternalEdge
	External    []ExternalEdge
	Pending     []PendingEdge // cross-batch edges within a split stream
}

// NumEdges returns the total number of edges the batch introduces.
func (b *VertexBatch) NumEdges() int {
	return len(b.Internal) + len(b.External) + len(b.Pending)
}

// Validate checks index ranges against the batch size and an existing graph
// of n vertices.
func (b *VertexBatch) Validate(n int) error {
	if b.NumVertices < 0 {
		return fmt.Errorf("change: negative batch size %d", b.NumVertices)
	}
	for _, e := range b.Internal {
		if e.A < 0 || int(e.A) >= b.NumVertices || e.B < 0 || int(e.B) >= b.NumVertices {
			return fmt.Errorf("change: internal edge {%d,%d} outside batch of %d", e.A, e.B, b.NumVertices)
		}
		if e.A == e.B {
			return fmt.Errorf("change: internal self-loop on %d", e.A)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("change: non-positive weight on internal edge {%d,%d}", e.A, e.B)
		}
	}
	for _, e := range b.External {
		if e.New < 0 || int(e.New) >= b.NumVertices {
			return fmt.Errorf("change: external edge new-index %d outside batch of %d", e.New, b.NumVertices)
		}
		if e.Existing < 0 || int(e.Existing) >= n {
			return fmt.Errorf("change: external edge existing-vertex %d outside graph of %d", e.Existing, n)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("change: non-positive weight on external edge {%d,%d}", e.New, e.Existing)
		}
	}
	for _, e := range b.Pending {
		if e.New < 0 || int(e.New) >= b.NumVertices {
			return fmt.Errorf("change: pending edge new-index %d outside batch of %d", e.New, b.NumVertices)
		}
		if e.EarlierBatchVertex < 0 {
			return fmt.Errorf("change: pending edge has negative stream index %d", e.EarlierBatchVertex)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("change: non-positive weight on pending edge {%d,stream %d}", e.New, e.EarlierBatchVertex)
		}
	}
	return nil
}

// BatchGraph builds the graph induced by the batch's new vertices and
// internal edges only (batch-local IDs). This is the graph CutEdge-PS
// partitions.
func (b *VertexBatch) BatchGraph() *graph.Graph {
	g := graph.New(b.NumVertices)
	for _, e := range b.Internal {
		if !g.HasEdge(int(e.A), int(e.B)) {
			g.MustAddEdge(int(e.A), int(e.B), e.Weight)
		}
	}
	return g
}

// EdgeAdd is a dynamic edge addition between two existing vertices.
type EdgeAdd struct {
	U, V   int32
	Weight graph.Weight
}

// EdgeDel is a dynamic edge deletion.
type EdgeDel struct {
	U, V int32
}

// EdgeWeight is a dynamic edge-weight change (the change kind of the
// methodology's earliest companion work). Weight decreases are absorbed
// incrementally like edge additions; increases invalidate the upper-bound
// invariant and trigger the same IA-reset path as deletions.
type EdgeWeight struct {
	U, V   int32
	Weight graph.Weight // the new weight
}

// VertexDel is a dynamic vertex deletion (the paper's stated future work;
// implemented here as an extension). All incident edges are removed; the
// vertex ID remains allocated but isolated and is excluded from centrality.
type VertexDel struct {
	V int32
}

// Rebalance requests an explicit load-rebalancing pass: the current
// assignment is refined (migrating partial results) without any topology
// change — the paper's stated future work on rebalancing after deletions
// skew the partitions.
type Rebalance struct{}

// Event is a tagged union of the dynamic change kinds, applied in order at
// a recombination step.
type Event struct {
	Batch         *VertexBatch
	EdgeAdds      []EdgeAdd
	EdgeDels      []EdgeDel
	WeightChanges []EdgeWeight
	VertexDel     *VertexDel
	Rebalance     *Rebalance
}
