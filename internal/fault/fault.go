// Package fault is the deterministic chaos layer for the simulated
// cluster: a seeded Plan describes which processors crash at which
// recombination steps and how lossy each link is (drop, duplicate, delay,
// corrupt), and an Injector turns the plan into a reproducible schedule of
// per-message fates that internal/cluster consults on every delivery
// attempt.
//
// Determinism is the point. A fate is a pure hash of
// (seed, exchange, from, to, messageIndex, attempt), so the same plan
// yields the same faults on every run regardless of goroutine scheduling —
// chaos soaks are replayable and failures bisectable. The zero-valued Plan
// injects nothing: the engine behaves bit-identically to a run without the
// fault layer (only the recovery shards it enables are extra).
//
// Faults apply to the boundary-DV data plane only (cluster.TagBoundaryDV).
// Row migration, vertex-addition broadcasts, and control traffic ride a
// reliable channel: losing them would tear engine state rather than delay
// convergence, and real deployments put exactly this class of traffic on
// reliable transports. Dropped and corrupted attempts are retransmitted on
// the simulated ack/nack timeout, every attempt charged to the LogP clock,
// until the bounded resend budget runs out; the cluster then reports the
// abandoned message back to the engine, which re-marks the affected rows
// for a full re-ship.
package fault

import (
	"fmt"

	"anytime/internal/cluster"
)

// Crash schedules one processor failure.
type Crash struct {
	// Proc is the processor that fails.
	Proc int
	// Step is the RC step at whose start the processor crashes, losing all
	// state since its last recovery shard.
	Step int
	// DownFor is how many RC steps the processor stays down before the
	// rejoin protocol brings it back (default 1).
	DownFor int
}

// Plan is a complete, seeded fault schedule. The zero value injects no
// faults.
type Plan struct {
	// Seed drives the per-message fate hash. Plans with equal seeds and
	// rates produce identical fault schedules.
	Seed int64
	// DropRate is the per-attempt probability that a boundary-DV message
	// is lost in the network (triggering an ack-timeout resend).
	DropRate float64
	// DuplicateRate is the per-attempt probability that a message is
	// delivered twice (lost ack, spurious retransmission).
	DuplicateRate float64
	// DelayRate is the per-attempt probability that a message is held in
	// flight and delivered at the next exchange instead of this one.
	DelayRate float64
	// CorruptRate is the per-attempt probability that a message arrives
	// bit-flipped; the receiver's checksum detects it and nacks, so the
	// effect is a detected loss plus a resend.
	CorruptRate float64
	// ResendBudget bounds the delivery attempts per message (default 8).
	// When exhausted, the message is abandoned and the engine re-marks its
	// rows for re-shipping.
	ResendBudget int
	// Crashes lists the scheduled processor failures.
	Crashes []Crash
}

// Validate checks the plan against a processor count.
func (p Plan) Validate(procs int) error {
	rates := []struct {
		name string
		v    float64
	}{
		{"DropRate", p.DropRate}, {"DuplicateRate", p.DuplicateRate},
		{"DelayRate", p.DelayRate}, {"CorruptRate", p.CorruptRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.DropRate+p.DuplicateRate+p.DelayRate+p.CorruptRate > 1 {
		return fmt.Errorf("fault: fault rates sum to more than 1")
	}
	if p.ResendBudget < 0 {
		return fmt.Errorf("fault: negative ResendBudget")
	}
	for _, c := range p.Crashes {
		if c.Proc < 0 || c.Proc >= procs {
			return fmt.Errorf("fault: crash of invalid processor %d (P=%d)", c.Proc, procs)
		}
		if c.Step < 0 {
			return fmt.Errorf("fault: crash at negative step %d", c.Step)
		}
		if c.DownFor < 0 {
			return fmt.Errorf("fault: negative DownFor %d", c.DownFor)
		}
	}
	return nil
}

// Zero reports whether the plan injects no faults at all.
func (p Plan) Zero() bool {
	return p.DropRate == 0 && p.DuplicateRate == 0 && p.DelayRate == 0 &&
		p.CorruptRate == 0 && len(p.Crashes) == 0
}

// Injector implements cluster.FaultHook over a Plan, plus the engine-side
// crash bookkeeping (which processors are currently down). It is consulted
// only from the engine's step goroutine; it is not safe for concurrent
// mutation.
type Injector struct {
	plan Plan
	down []bool
}

// NewInjector validates the plan and builds its injector for a P-processor
// machine.
func NewInjector(plan Plan, procs int) (*Injector, error) {
	if err := plan.Validate(procs); err != nil {
		return nil, err
	}
	if plan.ResendBudget == 0 {
		plan.ResendBudget = 8
	}
	return &Injector{plan: plan, down: make([]bool, procs)}, nil
}

// Plan returns the validated plan (with defaults applied).
func (in *Injector) Plan() Plan { return in.plan }

// Fate implements cluster.FaultHook: the deterministic per-attempt fate of
// one message. Non-boundary tags always deliver (reliable plane).
func (in *Injector) Fate(xid int64, from, to, msgIndex, attempt int, tag cluster.Tag) cluster.Fate {
	p := in.plan
	if tag != cluster.TagBoundaryDV {
		return cluster.FateDeliver
	}
	total := p.DropRate + p.DuplicateRate + p.DelayRate + p.CorruptRate
	if total == 0 {
		return cluster.FateDeliver
	}
	h := uint64(p.Seed)
	for _, v := range [...]uint64{uint64(xid), uint64(from), uint64(to), uint64(msgIndex), uint64(attempt)} {
		h = splitmix64(h ^ v)
	}
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < p.DropRate:
		return cluster.FateDrop
	case u < p.DropRate+p.CorruptRate:
		return cluster.FateCorrupt
	case u < p.DropRate+p.CorruptRate+p.DuplicateRate:
		return cluster.FateDuplicate
	case u < total:
		return cluster.FateDelay
	default:
		return cluster.FateDeliver
	}
}

// Down implements cluster.FaultHook.
func (in *Injector) Down(p int) bool { return in.down[p] }

// ResendBudget implements cluster.FaultHook.
func (in *Injector) ResendBudget() int { return in.plan.ResendBudget }

// SetDown records a processor crashing (true) or rejoining (false); called
// by the engine's crash/rejoin protocol.
func (in *Injector) SetDown(p int, down bool) { in.down[p] = down }

// AnyDown reports whether any processor is currently crashed.
func (in *Injector) AnyDown() bool {
	for _, d := range in.down {
		if d {
			return true
		}
	}
	return false
}

// CrashesAt returns the crashes scheduled for the given RC step.
func (in *Injector) CrashesAt(step int) []Crash {
	var out []Crash
	for _, c := range in.plan.Crashes {
		if c.Step == step {
			out = append(out, c)
		}
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixing
// function (Steele et al.), used to derive independent per-message fate
// decisions from the plan seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
