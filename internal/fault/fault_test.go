package fault

import (
	"testing"

	"anytime/internal/cluster"
)

func TestValidate(t *testing.T) {
	bad := []Plan{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{DropRate: 0.6, DelayRate: 0.6},
		{ResendBudget: -1},
		{Crashes: []Crash{{Proc: 4, Step: 0}}},
		{Crashes: []Crash{{Proc: 0, Step: -1}}},
		{Crashes: []Crash{{Proc: 0, Step: 0, DownFor: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("plan %d: Validate accepted %+v", i, p)
		}
	}
	ok := Plan{Seed: 1, DropRate: 0.1, DelayRate: 0.1, Crashes: []Crash{{Proc: 3, Step: 2, DownFor: 1}}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("Validate rejected valid plan: %v", err)
	}
}

func TestZero(t *testing.T) {
	if !(Plan{Seed: 7, ResendBudget: 3}).Zero() {
		t.Error("rate-free plan not Zero")
	}
	if (Plan{DropRate: 0.1}).Zero() || (Plan{Crashes: []Crash{{}}}).Zero() {
		t.Error("faulty plan reported Zero")
	}
}

func TestFateDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed int64) *Injector {
		in, err := NewInjector(Plan{Seed: seed, DropRate: 0.2, DuplicateRate: 0.1, DelayRate: 0.1, CorruptRate: 0.1}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b, c := mk(1), mk(1), mk(2)
	same, diff := true, false
	for xid := int64(0); xid < 50; xid++ {
		for mi := 0; mi < 4; mi++ {
			fa := a.Fate(xid, 0, 1, mi, 0, cluster.TagBoundaryDV)
			if fa != b.Fate(xid, 0, 1, mi, 0, cluster.TagBoundaryDV) {
				same = false
			}
			if fa != c.Fate(xid, 0, 1, mi, 0, cluster.TagBoundaryDV) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("identical plans produced different fates")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFateRatesRoughlyMatch(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42, DropRate: 0.25, DelayRate: 0.25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[cluster.Fate]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[in.Fate(int64(i), 0, 1, i%7, 0, cluster.TagBoundaryDV)]++
	}
	for fate, want := range map[cluster.Fate]float64{
		cluster.FateDrop:    0.25,
		cluster.FateDelay:   0.25,
		cluster.FateDeliver: 0.5,
	} {
		got := float64(counts[fate]) / trials
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("fate %d frequency %.3f, want ≈ %.2f", fate, got, want)
		}
	}
}

func TestReliablePlaneAlwaysDelivers(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 3, DropRate: 0.9, CorruptRate: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []cluster.Tag{cluster.TagMigrateRows, cluster.TagNewVertexRow, cluster.TagControl} {
		for i := 0; i < 200; i++ {
			if f := in.Fate(int64(i), 0, 1, 0, 0, tag); f != cluster.FateDeliver {
				t.Fatalf("tag %d got fate %d, want deliver", tag, f)
			}
		}
	}
}

func TestDownBookkeeping(t *testing.T) {
	in, err := NewInjector(Plan{Crashes: []Crash{{Proc: 1, Step: 3, DownFor: 2}, {Proc: 0, Step: 3}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.AnyDown() {
		t.Error("fresh injector has down processors")
	}
	in.SetDown(1, true)
	if !in.Down(1) || in.Down(0) || !in.AnyDown() {
		t.Error("SetDown(1) not reflected")
	}
	in.SetDown(1, false)
	if in.AnyDown() {
		t.Error("rejoin not reflected")
	}
	if got := len(in.CrashesAt(3)); got != 2 {
		t.Errorf("CrashesAt(3) = %d crashes, want 2", got)
	}
	if got := len(in.CrashesAt(4)); got != 0 {
		t.Errorf("CrashesAt(4) = %d crashes, want 0", got)
	}
	if in.ResendBudget() != 8 {
		t.Errorf("default ResendBudget = %d, want 8", in.ResendBudget())
	}
}
