// Package anytime is the public API of the anytime-anywhere dynamic-graph
// centrality library, a from-scratch reproduction of "Efficient Anytime
// Anywhere Algorithms for Vertex Additions in Large and Dynamic Graphs"
// (Santos, Korah, Murugappan, Subramanian; IPDPS Workshops 2017).
//
// The library computes closeness centrality on large graphs over a
// simulated distributed machine of P processors and absorbs dynamic vertex
// additions mid-computation without restarting:
//
//	g, _ := anytime.ScaleFreeGraph(2000, 3, 1)
//	e, _ := anytime.NewEngine(g, anytime.DefaultOptions())
//	e.Run()                         // converge (anytime: call Step instead)
//	batch, _ := anytime.CommunityBatch(g, 100, 1.5, 1)
//	e.QueueBatch(batch)             // anywhere: absorb new vertices
//	e.Run()
//	snap := e.Snapshot()            // exact closeness for every vertex
//
// The three processor-assignment strategies of the paper are selected via
// Options.Strategy: RoundRobinPS, CutEdgePS, and RepartitionS; the
// BaselineRestart comparator recomputes from scratch on every change.
package anytime

import (
	"io"

	"anytime/internal/centrality"
	"anytime/internal/change"
	"anytime/internal/clique"
	"anytime/internal/community"
	"anytime/internal/core"
	"anytime/internal/fault"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/logp"
	"anytime/internal/obs"
	"anytime/internal/partition"
	"anytime/internal/serve"
	"anytime/internal/stream"
)

// Graph is a weighted undirected graph over dense vertex IDs [0, N).
type Graph = graph.Graph

// Weight is a positive edge weight.
type Weight = graph.Weight

// Dist is a shortest-path distance; InfDist marks "no known path".
type Dist = graph.Dist

// InfDist is the unreachable-distance sentinel.
const InfDist = graph.InfDist

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Engine is the anytime-anywhere closeness-centrality engine (see
// NewEngine).
type Engine = core.Engine

// Options configures an Engine; see DefaultOptions for the paper-faithful
// defaults.
type Options = core.Options

// Strategy selects the dynamic vertex-addition processor-assignment
// strategy.
type Strategy = core.Strategy

// The paper's three vertex-addition strategies.
const (
	// RoundRobinPS assigns new vertices to processors in circular order.
	RoundRobinPS = core.RoundRobinPS
	// CutEdgePS partitions the batch graph to minimize new cut edges.
	CutEdgePS = core.CutEdgePS
	// RepartitionS repartitions the whole grown graph, reusing partial
	// results by migrating them.
	RepartitionS = core.RepartitionS
	// AutoPS switches between CutEdgePS and RepartitionS by batch size
	// (Options.AutoThreshold).
	AutoPS = core.AutoPS
)

// Snapshot is an anytime view of the centrality computation.
type Snapshot = core.Snapshot

// Metrics aggregates cost counters (RC steps, LogP virtual time, messages,
// new cut edges, ...).
type Metrics = core.Metrics

// Batch describes one dynamic vertex-addition event.
type Batch = change.VertexBatch

// EdgeAdd, EdgeDel, EdgeWeightChange and VertexDel are the other dynamic
// change kinds.
type (
	EdgeAdd          = change.EdgeAdd
	EdgeDel          = change.EdgeDel
	EdgeWeightChange = change.EdgeWeight
	VertexDel        = change.VertexDel
)

// BaselineRestart is the paper's comparator: full recomputation on every
// dynamic change.
type BaselineRestart = core.Restart

// FaultPlan is a seeded, reproducible fault-injection schedule for the
// simulated cluster: message drop/duplicate/delay/corrupt rates on the
// boundary-DV plane plus scheduled processor crashes. Set Options.Faults
// to run the engine under it; the engine still reconverges to the exact
// sequential oracle (see DESIGN.md §9).
type FaultPlan = fault.Plan

// FaultCrash schedules one processor crash inside a FaultPlan: the
// processor loses everything since its last recovery shard and rejoins
// after DownFor steps.
type FaultCrash = fault.Crash

// Partitioner splits a graph into k balanced parts (Domain Decomposition).
type Partitioner = partition.Partitioner

// LogPModel holds the simulated cluster's LogP parameters.
type LogPModel = logp.Model

// DefaultOptions returns the paper-faithful engine configuration: 8
// processors, multilevel k-way DD, dirty-only boundary shipping, local
// refinement on, serialized flood-avoiding all-to-all.
func DefaultOptions() Options { return core.NewOptions() }

// NewEngine builds an engine over a snapshot of g: runs Domain
// Decomposition and Initial Approximation. Call Run (or Step, for anytime
// interruption) afterwards.
func NewEngine(g *Graph, opts Options) (*Engine, error) { return core.New(g, opts) }

// NewBaselineRestart builds the restart comparator and runs the first full
// computation.
func NewBaselineRestart(g *Graph, opts Options) (*BaselineRestart, error) {
	return core.NewRestart(g, opts)
}

// MultilevelPartitioner returns the METIS-family multilevel k-way
// partitioner (the default for Domain Decomposition and Repartition-S).
func MultilevelPartitioner(seed int64) Partitioner { return partition.Multilevel{Seed: seed} }

// RoundRobinPartitioner returns the edge-oblivious round-robin partitioner.
func RoundRobinPartitioner() Partitioner { return partition.RoundRobin{} }

// GreedyPartitioner returns the BFS greedy-growing partitioner.
func GreedyPartitioner(seed int64) Partitioner { return partition.Greedy{Seed: seed} }

// GigabitClusterModel returns LogP parameters resembling the paper's
// testbed (1 Gb/s Ethernet cluster) for p processors.
func GigabitClusterModel(p int) LogPModel { return logp.GigabitCluster(p) }

// ScaleFreeGraph generates a connected Barabási–Albert scale-free graph
// with n vertices, m attachment edges per vertex, and unit weights — the
// regime of the paper's Pajek-generated inputs.
func ScaleFreeGraph(n, m int, seed int64) (*Graph, error) {
	g, err := gen.BarabasiAlbert(n, m, gen.Weights{}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}

// WeightedScaleFreeGraph is ScaleFreeGraph with integer edge weights drawn
// uniformly from [minW, maxW].
func WeightedScaleFreeGraph(n, m int, minW, maxW Weight, seed int64) (*Graph, error) {
	g, err := gen.BarabasiAlbert(n, m, gen.Weights{Min: minW, Max: maxW}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}

// CommunityGraph generates a planted-partition graph of n vertices in c
// communities (intra/inter edge probabilities pin/pout), returning the
// ground-truth community labels.
func CommunityGraph(n, c int, pin, pout float64, seed int64) (*Graph, []int32, error) {
	return gen.PlantedPartition(n, c, pin, pout, gen.Weights{}, seed)
}

// PreferentialBatch generates a batch of k new vertices attaching to g
// preferentially by degree (organic growth; the Fig. 4/8 workload). Each
// new vertex receives mExt edges into the existing graph and up to mInt
// edges to earlier batch vertices.
func PreferentialBatch(g *Graph, k, mExt, mInt int, seed int64) (*Batch, error) {
	return gen.PreferentialBatch(g, k, mExt, mInt, gen.Weights{}, seed)
}

// CommunityBatch generates a batch of k new vertices with community
// structure, extracted from a scale-free reservoir via Louvain — the
// paper's Fig. 5-7 workload. extAvg is the average number of anchor edges
// per new vertex into the existing graph.
func CommunityBatch(g *Graph, k int, extAvg float64, seed int64) (*Batch, error) {
	return gen.CommunityBatch(g, k, extAvg, gen.Weights{}, seed)
}

// SplitBatch divides a batch into `steps` sub-batches applied at
// consecutive RC steps (the incremental-additions scenario, Fig. 8).
func SplitBatch(b *Batch, steps int) []*Batch { return gen.SplitBatch(b, steps) }

// Closeness computes exact closeness centrality sequentially (the
// verification oracle; use the Engine for the parallel dynamic version).
func Closeness(g *Graph) []float64 { return centrality.Closeness(g) }

// Harmonic computes exact harmonic closeness sequentially.
func Harmonic(g *Graph) []float64 { return centrality.Harmonic(g) }

// Betweenness computes exact Brandes betweenness sequentially.
func Betweenness(g *Graph) []float64 { return centrality.Betweenness(g) }

// DegreeCentrality computes degree centrality normalized by n-1.
func DegreeCentrality(g *Graph) []float64 { return centrality.Degree(g) }

// TopK returns the indices of the k largest scores in descending order.
func TopK(scores []float64, k int) []int { return centrality.TopK(scores, k) }

// Communities runs Louvain community detection and returns the per-vertex
// labels, the community count, and the modularity.
func Communities(g *Graph, seed int64) ([]int32, int, float64) {
	res := community.Louvain(g, seed)
	return res.Label, res.K, res.Modularity
}

// EdgeCut returns the number of cut edges of a partition produced by a
// Partitioner.
func EdgeCut(g *Graph, p *graph.Partition) int { return graph.EdgeCut(g, p) }

// ReadPajek parses a Pajek .net file (the format of the paper's generator
// tooling).
func ReadPajek(r io.Reader) (*Graph, error) { return graph.ReadPajek(r) }

// WritePajek writes the graph in Pajek .net format.
func WritePajek(w io.Writer, g *Graph) error { return graph.WritePajek(w, g) }

// ReadEdgeList parses the plain "n m" + "u v w" edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes the plain edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteCheckpoint serializes an engine's complete state (graph, partition,
// distance vectors, counters) at an RC-step boundary — the fault-tolerance
// extension (the paper's stated future work). Restore with
// RestoreEngine.
func WriteCheckpoint(w io.Writer, e *Engine) error { return e.WriteCheckpoint(w) }

// RestoreEngine reconstructs an engine from a checkpoint written by
// WriteCheckpoint. opts must use the same P as the checkpointed engine.
func RestoreEngine(r io.Reader, opts Options) (*Engine, error) { return core.Restore(r, opts) }

// ReadMETIS parses the METIS/Chaco graph format used across the
// graph-partitioning ecosystem.
func ReadMETIS(r io.Reader) (*Graph, error) { return graph.ReadMETIS(r) }

// WriteMETIS writes the METIS graph format (with edge weights).
func WriteMETIS(w io.Writer, g *Graph) error { return graph.WriteMETIS(w, g) }

// MaximalCliques streams every maximal clique of g to visit (sorted
// ascending; the slice is reused between calls). Returning false from the
// visitor stops the enumeration — the anytime interrupt of the
// methodology's maximal-clique lineage. It returns the number of cliques
// reported and whether the enumeration completed.
func MaximalCliques(g *Graph, visit func(clique []int32) bool) (int, bool) {
	return clique.EnumerateMaximal(g, visit)
}

// MaxClique returns one maximum clique of g by full enumeration.
func MaxClique(g *Graph) []int32 { return clique.MaxClique(g) }

// Degeneracy returns the graph degeneracy (a sparsity measure of social
// networks that bounds the clique-enumeration recursion).
func Degeneracy(g *Graph) int { return clique.Degeneracy(g) }

// TraceEvent is one entry of the engine's execution trace (see
// Options.Trace).
type TraceEvent = core.TraceEvent

// Tracer receives engine trace events.
type Tracer = core.Tracer

// SpanTracer is the structured phase-span tracer (see Options.Obs): a
// fixed-capacity ring of spans carrying both wall and LogP virtual clocks,
// exportable as JSONL or a Chrome trace via cmd/aatrace.
type SpanTracer = obs.Tracer

// Span is one recorded phase span.
type Span = obs.Span

// NewSpanTracer builds a span tracer; capacity <= 0 uses the default ring
// size (the tracer keeps the most recent spans once full).
func NewSpanTracer(capacity int) *SpanTracer { return obs.NewTracer(capacity) }

// MetricsRegistry renders counters/gauges/histograms in the Prometheus
// text exposition format (see Server.Registry and GET /metrics).
type MetricsRegistry = obs.Registry

// Eigenvector computes eigenvector centrality by power iteration
// (maxIter/tol 0 = defaults).
func Eigenvector(g *Graph, maxIter int, tol float64) []float64 {
	return centrality.Eigenvector(g, maxIter, tol)
}

// PageRank computes PageRank with damping d (0 = 0.85).
func PageRank(g *Graph, d float64, maxIter int, tol float64) []float64 {
	return centrality.PageRank(g, d, maxIter, tol)
}

// Lin computes Lin's index (component-size-corrected closeness), robust on
// disconnected graphs.
func Lin(g *Graph) []float64 { return centrality.Lin(g) }

// Katz computes Katz centrality x = αAx + 1 (alpha 0 = safe default).
func Katz(g *Graph, alpha float64, maxIter int, tol float64) []float64 {
	return centrality.Katz(g, alpha, maxIter, tol)
}

// ApproxCloseness estimates closeness by pivot sampling (the scheme behind
// the closeness-ranking work the paper cites); cost O(samples·(E+n log n)).
func ApproxCloseness(g *Graph, samples int, seed int64) []float64 {
	return centrality.ApproxCloseness(g, samples, seed)
}

// TopKCloseness returns the k highest-closeness vertices via pivot
// sampling plus exact verification of a candidate set.
func TopKCloseness(g *Graph, k, samples int, seed int64) []int {
	return centrality.TopKCloseness(g, k, samples, seed)
}

// Stream is a replayable, timestamped dynamic-graph event stream.
type Stream = stream.Stream

// StreamEvent is one timestamped change in a Stream.
type StreamEvent = stream.Event

// StreamConfig parameterizes synthetic stream generation.
type StreamConfig = stream.GenConfig

// GenerateStream produces a synthetic growth-with-churn stream over base.
func GenerateStream(base *Graph, cfg StreamConfig) (*Stream, error) {
	return stream.Generate(base, cfg)
}

// ReadStream parses a stream from its text format; WriteStream writes it.
func ReadStream(r io.Reader) (*Stream, error) { return stream.Read(r) }

// WriteStream serializes a stream as text.
func WriteStream(w io.Writer, s *Stream) error { return stream.Write(w, s) }

// ReplayStream drives an engine from a stream in time windows of the given
// width (one recombination step per window), then converges it. Returns
// the number of windows replayed.
func ReplayStream(e *Engine, s *Stream, window int64) (int, error) {
	return stream.Replay(e, s, window)
}

// StepStats records what one recombination step did (see Engine.History).
type StepStats = core.StepStats

// Server is the live query-serving subsystem: it owns an Engine on a
// background driver goroutine, ingests dynamic events through a bounded
// admission queue, and publishes immutable versioned snapshots that any
// number of readers query without locking (see NewServer).
type Server = serve.Server

// ServeConfig tunes the serving subsystem (publish interval, admission
// queue capacity, backpressure wait, top-k index size, checkpoint path).
type ServeConfig = serve.Config

// ServeView is one published, immutable, versioned snapshot: centrality
// estimates plus serving metadata and a precomputed top-k index.
type ServeView = serve.View

// ServeCounters are the serving subsystem's counters, rendered on
// GET /metrics in the Prometheus text exposition format.
type ServeCounters = serve.Counters

// ServeClient is a minimal client for the serving HTTP API — the load
// generator's half of the pair (see cmd/aastream -mode replay -target).
type ServeClient = serve.Client

// ErrBackpressure is returned when the admission queue stays full for the
// configured wait: ingestion is outrunning recombination (HTTP: 429).
var ErrBackpressure = serve.ErrBackpressure

// ErrServerClosed is returned by admission once a Server is closing
// (HTTP: 503).
var ErrServerClosed = serve.ErrClosed

// NewServer wraps an engine (freshly built or restored from a checkpoint)
// in the serving subsystem and starts the background driver. Ownership of
// the engine transfers to the Server: every RC step is driven by the
// server's goroutine, and after each step (or every ServeConfig.PublishEvery
// steps) an immutable versioned snapshot is published for lock-free
// readers. Serve HTTP with (&http.Server{Handler: s.Handler()}); stop with
// s.Close(), which drains admitted events, converges, and checkpoints.
func NewServer(e *Engine, cfg ServeConfig) (*Server, error) { return serve.New(e, cfg) }

// ApproxBetweenness estimates betweenness by source sampling (the
// adaptive-sampling family the paper cites); cost O(samples·(E+n log n)).
func ApproxBetweenness(g *Graph, samples int, seed int64) []float64 {
	return centrality.ApproxBetweenness(g, samples, seed)
}

// GeometricGraph generates a random geometric graph: n points in the unit
// square connected within the given radius — the sensor-network workload
// of the paper's introduction. The result may be disconnected; pick the
// radius for the density you need.
func GeometricGraph(n int, radius float64, seed int64) (*Graph, error) {
	g, err := gen.RandomGeometric(n, radius, gen.Weights{}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}
