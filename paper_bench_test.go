// The paper-scale benchmark tier: the full n=50,000 / P=16 testbed of the
// source paper, opt-in because one trajectory allocates a ~50,000² distance
// matrix (~20 GB) and runs for minutes. Gated behind AA_PAPER_BENCH so
// `go test -bench .` and the bench-json archive stay laptop-safe; run it
// via the bench-paper Makefile target.
package anytime_test

import (
	"os"
	"testing"

	"anytime/internal/harness"
)

func BenchmarkPaperScale(b *testing.B) {
	if os.Getenv("AA_PAPER_BENCH") == "" {
		b.Skip("paper-scale tier is opt-in: set AA_PAPER_BENCH=1 (make bench-paper)")
	}
	b.ReportAllocs()
	var absorbWall, absorbVirt, steps float64
	for i := 0; i < b.N; i++ {
		r, err := harness.Paper(harness.Config{})
		if err != nil {
			b.Fatal(err)
		}
		// Series 0/1 are per-step wall/virtual ms of the absorption cascade
		// (the measured quantity; the oracle-seeded warm start is setup).
		for _, y := range r.Series[0].Y {
			absorbWall += y
		}
		for _, y := range r.Series[1].Y {
			absorbVirt += y
		}
		steps += float64(len(r.Series[0].Y))
		for _, n := range r.Notes {
			b.Log(n)
		}
	}
	b.ReportMetric(absorbWall/float64(b.N), "absorb-ms/op")
	b.ReportMetric(absorbVirt/float64(b.N), "virt-ms/op")
	b.ReportMetric(steps/float64(b.N), "rc-steps/op")
}
