package anytime_test

import (
	"bytes"
	"fmt"
	"testing"

	"anytime"
)

func TestPublicAPIStaticMatchesOracle(t *testing.T) {
	g, err := anytime.ScaleFreeGraph(150, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := anytime.DefaultOptions()
	opts.P = 4
	opts.Seed = 9
	e, err := anytime.NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	snap := e.Snapshot()
	oracle := anytime.Closeness(g)
	for v := range oracle {
		diff := snap.Closeness[v] - oracle[v]
		if diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("closeness[%d]: engine %g vs oracle %g", v, snap.Closeness[v], oracle[v])
		}
	}
}

func TestPublicAPIDynamicFlow(t *testing.T) {
	g, err := anytime.WeightedScaleFreeGraph(120, 2, 1, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []anytime.Strategy{
		anytime.RoundRobinPS, anytime.CutEdgePS, anytime.RepartitionS,
	} {
		opts := anytime.DefaultOptions()
		opts.P = 4
		opts.Seed = 11
		opts.Strategy = strat
		e, err := anytime.NewEngine(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := anytime.CommunityBatch(g, 20, 1.5, 13)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if !e.Converged() {
			t.Fatalf("%v: not converged", strat)
		}
		oracle := anytime.Closeness(e.Graph())
		snap := e.Snapshot()
		for v := range oracle {
			diff := snap.Closeness[v] - oracle[v]
			if diff > 1e-15 || diff < -1e-15 {
				t.Fatalf("%v: closeness[%d] mismatch", strat, v)
			}
		}
	}
}

func TestPublicAPIGeneratorsAndIO(t *testing.T) {
	g, labels, err := anytime.CommunityGraph(120, 4, 0.25, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 120 {
		t.Fatalf("labels = %d", len(labels))
	}
	var buf bytes.Buffer
	if err := anytime.WritePajek(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := anytime.ReadPajek(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("pajek round trip lost edges")
	}
	buf.Reset()
	if err := anytime.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := anytime.ReadEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	found, k, q := anytime.Communities(g, 3)
	if len(found) != 120 || k < 2 || q < 0.3 {
		t.Fatalf("communities: k=%d q=%g", k, q)
	}
}

func TestPublicAPIPartitioners(t *testing.T) {
	g, err := anytime.ScaleFreeGraph(200, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []anytime.Partitioner{
		anytime.MultilevelPartitioner(5),
		anytime.RoundRobinPartitioner(),
		anytime.GreedyPartitioner(5),
	} {
		p, err := pt.Partition(g, 4)
		if err != nil {
			t.Fatalf("%s: %v", pt.Name(), err)
		}
		if cut := anytime.EdgeCut(g, p); cut <= 0 || cut > g.NumEdges() {
			t.Fatalf("%s: cut %d", pt.Name(), cut)
		}
	}
}

func TestPublicAPIModelAndCentrality(t *testing.T) {
	m := anytime.GigabitClusterModel(16)
	if m.P != 16 || m.Validate() != nil {
		t.Fatalf("model = %+v", m)
	}
	g, _ := anytime.ScaleFreeGraph(60, 2, 7)
	if len(anytime.Harmonic(g)) != 60 || len(anytime.Betweenness(g)) != 60 ||
		len(anytime.DegreeCentrality(g)) != 60 {
		t.Fatal("centrality lengths wrong")
	}
}

// ExampleNewEngine demonstrates the static anytime analysis.
func ExampleNewEngine() {
	g, _ := anytime.ScaleFreeGraph(100, 2, 1)
	opts := anytime.DefaultOptions()
	opts.P = 4
	opts.Seed = 1
	e, _ := anytime.NewEngine(g, opts)
	e.Run()
	snap := e.Snapshot()
	fmt.Println("converged:", snap.Converged)
	fmt.Println("vertices ranked:", len(snap.Closeness))
	// Output:
	// converged: true
	// vertices ranked: 100
}

// ExampleEngine_QueueBatch demonstrates the anywhere property: vertex
// additions absorbed mid-analysis.
func ExampleEngine_QueueBatch() {
	g, _ := anytime.ScaleFreeGraph(100, 2, 1)
	opts := anytime.DefaultOptions()
	opts.P = 4
	opts.Seed = 1
	opts.Strategy = anytime.CutEdgePS
	e, _ := anytime.NewEngine(g, opts)
	e.Step() // analysis in progress...
	batch, _ := anytime.PreferentialBatch(g, 10, 2, 1, 2)
	_ = e.QueueBatch(batch) // ...when 10 new vertices arrive
	e.Run()
	fmt.Println("final graph size:", e.Graph().NumVertices())
	// Output:
	// final graph size: 110
}

// ExampleEngine_Path demonstrates shortest-path reconstruction from the
// distance-vector routing tables.
func ExampleEngine_Path() {
	g := anytime.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 3, 5) // longer direct edge
	opts := anytime.DefaultOptions()
	opts.P = 2
	e, _ := anytime.NewEngine(g, opts)
	e.Run()
	path, _ := e.Path(0, 3)
	fmt.Println(path)
	// Output:
	// [0 1 2 3]
}

// ExampleWriteCheckpoint demonstrates fault-tolerant save/restore.
func ExampleWriteCheckpoint() {
	g, _ := anytime.ScaleFreeGraph(60, 2, 1)
	opts := anytime.DefaultOptions()
	opts.P = 2
	opts.Seed = 1
	e, _ := anytime.NewEngine(g, opts)
	e.Step() // mid-analysis
	var buf bytes.Buffer
	_ = anytime.WriteCheckpoint(&buf, e)
	r, _ := anytime.RestoreEngine(&buf, opts)
	r.Run()
	fmt.Println("resumed and converged:", r.Snapshot().Converged)
	// Output:
	// resumed and converged: true
}

// ExampleMaximalCliques demonstrates anytime clique enumeration.
func ExampleMaximalCliques() {
	g := anytime.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	count, done := anytime.MaximalCliques(g, func(c []int32) bool {
		fmt.Println(c)
		return true
	})
	fmt.Println(count, done)
	// Output:
	// [2 3]
	// [0 1 2]
	// 2 true
}

func TestPublicAPISpectralAndApprox(t *testing.T) {
	g, err := anytime.ScaleFreeGraph(150, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(anytime.Eigenvector(g, 0, 0)) != 150 ||
		len(anytime.PageRank(g, 0, 0, 0)) != 150 ||
		len(anytime.Katz(g, 0, 0, 0)) != 150 ||
		len(anytime.Lin(g)) != 150 {
		t.Fatal("centrality lengths wrong")
	}
	top := anytime.TopKCloseness(g, 5, 25, 13)
	if len(top) != 5 {
		t.Fatalf("topk = %v", top)
	}
	if anytime.Degeneracy(g) < 2 {
		t.Fatal("BA(m=2) degeneracy must be >= 2")
	}
	if len(anytime.MaxClique(g)) < 3 {
		t.Fatal("max clique too small")
	}
}

func TestPublicAPIMETIS(t *testing.T) {
	g, err := anytime.ScaleFreeGraph(50, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := anytime.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := anytime.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("METIS round trip lost edges")
	}
}

func TestPublicAPIStreams(t *testing.T) {
	base, err := anytime.GeometricGraph(120, 0.15, 19)
	if err != nil {
		t.Fatal(err)
	}
	s, err := anytime.GenerateStream(base, anytime.StreamConfig{Ticks: 20, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := anytime.WriteStream(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := anytime.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(s.Events) {
		t.Fatal("stream round trip lost events")
	}
	opts := anytime.DefaultOptions()
	opts.P = 4
	opts.Seed = 19
	opts.Strategy = anytime.AutoPS
	e, err := anytime.NewEngine(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := anytime.ReplayStream(e, back, 5)
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 || !e.Converged() {
		t.Fatalf("replay: windows=%d converged=%v", windows, e.Converged())
	}
	if len(e.History()) == 0 {
		t.Fatal("no step history recorded")
	}
	// engine-side approximations remain usable on the grown graph
	if len(anytime.ApproxBetweenness(e.Graph(), 20, 19)) != e.Graph().NumVertices() {
		t.Fatal("approx betweenness length wrong")
	}
}
