// Command aastream generates and replays dynamic-graph event streams.
//
// Generate a stream over a base graph:
//
//	aastream -mode gen -n 1000 -ticks 200 -seed 1 > events.stream
//
// Replay a stream through the anytime-anywhere engine (regenerating the
// same base graph from the seed) and report the final top-closeness
// vertices and cost:
//
//	aastream -mode replay -n 1000 -seed 1 -window 10 < events.stream
package main

import (
	"flag"
	"fmt"
	"os"

	"anytime"
)

func main() {
	var (
		mode   = flag.String("mode", "gen", "gen | replay")
		n      = flag.Int("n", 1000, "base graph size (Barabási–Albert, m=2)")
		seed   = flag.Int64("seed", 1, "seed for the base graph and generation")
		ticks  = flag.Int("ticks", 200, "gen: logical time steps")
		joins  = flag.Float64("joins", 1, "gen: expected joins per tick")
		churn  = flag.Float64("churn", 0.1, "gen: expected edge deletions per tick")
		window = flag.Int64("window", 10, "replay: ticks per recombination window")
		p      = flag.Int("p", 8, "replay: simulated processors")
		top    = flag.Int("top", 5, "replay: top-closeness vertices to print")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aastream: %v\n", err)
		os.Exit(1)
	}

	base, err := anytime.ScaleFreeGraph(*n, 2, *seed)
	if err != nil {
		fail(err)
	}

	switch *mode {
	case "gen":
		s, err := anytime.GenerateStream(base, anytime.StreamConfig{
			Ticks: *ticks, JoinsPerTick: *joins, ChurnRate: *churn, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		if err := anytime.WriteStream(os.Stdout, s); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "aastream: %d events over %d ticks (base %d -> %d vertices)\n",
			len(s.Events), *ticks, s.BaseN, s.FinalN())
	case "replay":
		s, err := anytime.ReadStream(os.Stdin)
		if err != nil {
			fail(err)
		}
		opts := anytime.DefaultOptions()
		opts.P = *p
		opts.Seed = *seed
		opts.Strategy = anytime.AutoPS
		e, err := anytime.NewEngine(base, opts)
		if err != nil {
			fail(err)
		}
		windows, err := anytime.ReplayStream(e, s, *window)
		if err != nil {
			fail(err)
		}
		snap := e.Snapshot()
		m := e.Metrics()
		fmt.Printf("replayed %d windows (%d events): %d vertices, %d edges, %d RC steps\n",
			windows, len(s.Events), e.Graph().NumVertices(), e.Graph().NumEdges(), m.RCSteps)
		fmt.Printf("cost: virtual=%v messages=%d repartitions=%d\n",
			m.VirtualTime.Round(1000), m.Comm.Messages, m.Repartitions)
		fmt.Printf("top %d by closeness:\n", *top)
		for rank, v := range anytime.TopK(snap.Closeness, *top) {
			fmt.Printf("  %d. vertex %-7d C=%.6g\n", rank+1, v, snap.Closeness[v])
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}
