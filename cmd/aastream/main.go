// Command aastream generates and replays dynamic-graph event streams.
//
// Generate a stream over a base graph:
//
//	aastream -mode gen -n 1000 -ticks 200 -seed 1 > events.stream
//
// Replay a stream through the anytime-anywhere engine (regenerating the
// same base graph from the seed) and report the final top-closeness
// vertices and cost:
//
//	aastream -mode replay -n 1000 -seed 1 -window 10 < events.stream
//
// Or replay it as a load generator against a running aaserve instance
// (which must serve the same base graph, e.g. aaserve -n 1000 -seed 1):
// each time window is POSTed to /v1/events, with retry under
// backpressure, and the final ranking is fetched back from the server:
//
//	aastream -mode replay -target http://localhost:8080 -window 10 < events.stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"anytime"
)

func main() {
	var (
		mode   = flag.String("mode", "gen", "gen | replay")
		n      = flag.Int("n", 1000, "base graph size (Barabási–Albert, m=2)")
		seed   = flag.Int64("seed", 1, "seed for the base graph and generation")
		ticks  = flag.Int("ticks", 200, "gen: logical time steps")
		joins  = flag.Float64("joins", 1, "gen: expected joins per tick")
		churn  = flag.Float64("churn", 0.1, "gen: expected edge deletions per tick")
		window = flag.Int64("window", 10, "replay: ticks per recombination window")
		p      = flag.Int("p", 8, "replay: simulated processors")
		top    = flag.Int("top", 5, "replay: top-closeness vertices to print")
		target = flag.String("target", "", "replay: POST the stream to this aaserve base URL instead of replaying locally")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aastream: %v\n", err)
		os.Exit(1)
	}

	switch *mode {
	case "gen":
		base, err := anytime.ScaleFreeGraph(*n, 2, *seed)
		if err != nil {
			fail(err)
		}
		s, err := anytime.GenerateStream(base, anytime.StreamConfig{
			Ticks: *ticks, JoinsPerTick: *joins, ChurnRate: *churn, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		if err := anytime.WriteStream(os.Stdout, s); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "aastream: %d events over %d ticks (base %d -> %d vertices)\n",
			len(s.Events), *ticks, s.BaseN, s.FinalN())
	case "replay":
		s, err := anytime.ReadStream(os.Stdin)
		if err != nil {
			fail(err)
		}
		if *target != "" {
			if err := replayRemote(s, *target, *window, *top); err != nil {
				fail(err)
			}
			return
		}
		base, err := anytime.ScaleFreeGraph(*n, 2, *seed)
		if err != nil {
			fail(err)
		}
		opts := anytime.DefaultOptions()
		opts.P = *p
		opts.Seed = *seed
		opts.Strategy = anytime.AutoPS
		e, err := anytime.NewEngine(base, opts)
		if err != nil {
			fail(err)
		}
		windows, err := anytime.ReplayStream(e, s, *window)
		if err != nil {
			fail(err)
		}
		snap := e.Snapshot()
		m := e.Metrics()
		fmt.Printf("replayed %d windows (%d events): %d vertices, %d edges, %d RC steps\n",
			windows, len(s.Events), e.Graph().NumVertices(), e.Graph().NumEdges(), m.RCSteps)
		fmt.Printf("cost: virtual=%v messages=%d repartitions=%d\n",
			m.VirtualTime.Round(1000), m.Comm.Messages, m.Repartitions)
		fmt.Printf("top %d by closeness:\n", *top)
		for rank, v := range snap.TopK(*top) {
			fmt.Printf("  %d. vertex %-7d C=%.6g\n", rank+1, v, snap.Closeness[v])
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

// replayRemote turns aastream into a load generator: every stream window
// is POSTed to a running aaserve, retrying with backoff when the server
// pushes back, then the converged ranking is fetched from the server.
func replayRemote(s *anytime.Stream, target string, window int64, top int) error {
	ctx := context.Background()
	client := &anytime.ServeClient{BaseURL: target}
	start, err := client.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("probing %s: %w", target, err)
	}
	if start.Vertices != s.BaseN {
		return fmt.Errorf("server graph has %d vertices, stream base is %d (start aaserve with the stream's base graph)",
			start.Vertices, s.BaseN)
	}
	posted, retries := 0, 0
	for _, evs := range s.Window(window) {
		for {
			ack, err := client.PostEvents(ctx, evs)
			if errors.Is(err, anytime.ErrBackpressure) {
				retries++
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if err != nil {
				return err
			}
			posted += ack.Admitted
			break
		}
	}
	fmt.Printf("posted %d events in %d windows to %s (%d backpressure retries)\n",
		posted, len(s.Window(window)), target, retries)

	// Wait for the server to absorb everything and re-converge.
	deadline := time.Now().Add(5 * time.Minute)
	for {
		m, err := client.Snapshot(ctx)
		if err != nil {
			return err
		}
		if m.Converged && m.QueueDepth == 0 && m.Vertices == s.FinalN() {
			fmt.Printf("server converged: snapshot v%d, %d vertices, %d RC steps\n",
				m.Version, m.Vertices, m.RCSteps)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not converge (snapshot v%d, depth %d)", m.Version, m.QueueDepth)
		}
		time.Sleep(50 * time.Millisecond)
	}
	tk, err := client.TopK(ctx, top)
	if err != nil {
		return err
	}
	fmt.Printf("top %d by closeness (served):\n", tk.K)
	for rank, r := range tk.Results {
		fmt.Printf("  %d. vertex %-7d C=%.6g\n", rank+1, r.Vertex, r.Closeness)
	}
	return nil
}
