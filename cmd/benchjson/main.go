// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// (see the bench-json Makefile target, which records the RC-phase and
// figure-reproduction benchmarks in BENCH_rc.json).
//
// Every benchmark result line becomes one entry holding the iteration
// count and every value/unit pair the benchmark reported (ns/op, B/op,
// allocs/op, and custom metrics such as rowsshipped/step).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	doc := &document{Context: map[string]string{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case len(fields) >= 2 && (fields[0] == "goos:" || fields[0] == "goarch:" || fields[0] == "cpu:"):
			key := strings.TrimSuffix(fields[0], ":")
			doc.Context[key] = strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		case len(fields) >= 2 && fields[0] == "pkg:":
			pkg = fields[1]
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) >= 4:
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue // a PASS/FAIL or log line that happens to match
			}
			b := benchmark{
				Name:       trimProcSuffix(fields[0]),
				Package:    pkg,
				Iterations: iters,
				Metrics:    map[string]float64{},
			}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				b.Metrics[fields[i+1]] = v
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// trimProcSuffix strips the trailing "-N" GOMAXPROCS marker the testing
// package appends to benchmark names (absent when GOMAXPROCS is 1).
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
