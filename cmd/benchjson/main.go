// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and diffed
// (see the bench-json Makefile target, which records the RC-phase and
// figure-reproduction benchmarks in BENCH_rc.json).
//
// Every benchmark result line becomes one entry holding the iteration
// count and every value/unit pair the benchmark reported (ns/op, B/op,
// allocs/op, and custom metrics such as rowsshipped/step).
//
// With -compare BASELINE.json, the parsed run is instead checked against
// an archived baseline: every RC relax/refine-phase benchmark present in
// both runs must keep its ns/op within the regression threshold (15%), or
// the command exits nonzero (see the bench-compare Makefile target).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func main() {
	baseline := flag.String("compare", "", "baseline JSON file: check RC relax/refine ns/op against it instead of emitting JSON")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression in -compare mode")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := compare(doc, *baseline, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gated reports whether a benchmark participates in the regression gate:
// the RC relax-phase and refine-phase benchmarks plus the tracer-enabled
// step benchmark, whose ns/op is the committed performance contract.
func gated(name string) bool {
	// The TCP round trip is archived but not gated: loopback RTTs are
	// scheduler noise, not a performance contract.
	return strings.HasPrefix(name, "BenchmarkRCRelaxPhase") ||
		strings.HasPrefix(name, "BenchmarkRCRefinePhase") ||
		strings.HasPrefix(name, "BenchmarkRCStepTraced") ||
		strings.HasPrefix(name, "BenchmarkTransportRoundTripInproc")
}

// compare checks the parsed run's gated benchmarks against the archived
// baseline, printing one line per comparison. Benchmarks absent from the
// baseline (newly added) or from the run pass with a note; a gated ns/op
// above baseline*(1+threshold) fails the whole comparison.
func compare(run *document, baselinePath string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	baseNS := map[string]float64{}
	baseVirt := map[string]float64{}
	for _, b := range base.Benchmarks {
		if !gated(b.Name) {
			continue
		}
		if ns, ok := b.Metrics["ns/op"]; ok {
			baseNS[b.Name] = ns
		}
		if v, ok := b.Metrics["virt-ms/op"]; ok {
			baseVirt[b.Name] = v
		}
	}
	compared, failed := 0, 0
	for _, b := range run.Benchmarks {
		if !gated(b.Name) {
			continue
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		// The simulated LogP clock rides along in the table: virtual time is
		// what the figure reproductions report, so a wall-time comparison
		// without it hides algorithmic (op-count) shifts behind machine noise.
		virt := ""
		if v, ok := b.Metrics["virt-ms/op"]; ok {
			virt = fmt.Sprintf("  virt %8.3f ms", v)
			if bv, ok := baseVirt[b.Name]; ok && bv > 0 {
				virt += fmt.Sprintf(" (%+.1f%%)", 100*(v-bv)/bv)
			}
		}
		old, ok := baseNS[b.Name]
		delete(baseNS, b.Name)
		if !ok {
			fmt.Printf("  new  %-44s %14.0f ns/op (no baseline)%s\n", b.Name, ns, virt)
			continue
		}
		compared++
		delta := (ns - old) / old
		verdict := "ok"
		if delta > threshold {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("  %-4s %-44s %14.0f ns/op  baseline %14.0f  %+6.1f%%%s\n",
			verdict, b.Name, ns, old, 100*delta, virt)
	}
	for name := range baseNS {
		fmt.Printf("  gone %-44s (in baseline, not in this run)\n", name)
	}
	if compared == 0 {
		return fmt.Errorf("no gated benchmarks in common with %s", baselinePath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d gated benchmarks regressed more than %.0f%%",
			failed, compared, 100*threshold)
	}
	fmt.Printf("benchjson: %d gated benchmarks within %.0f%% of %s\n",
		compared, 100*threshold, baselinePath)
	return nil
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	doc := &document{Context: map[string]string{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case len(fields) >= 2 && (fields[0] == "goos:" || fields[0] == "goarch:" || fields[0] == "cpu:"):
			key := strings.TrimSuffix(fields[0], ":")
			doc.Context[key] = strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		case len(fields) >= 2 && fields[0] == "pkg:":
			pkg = fields[1]
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) >= 4:
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue // a PASS/FAIL or log line that happens to match
			}
			b := benchmark{
				Name:       trimProcSuffix(fields[0]),
				Package:    pkg,
				Iterations: iters,
				Metrics:    map[string]float64{},
			}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				b.Metrics[fields[i+1]] = v
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// trimProcSuffix strips the trailing "-N" GOMAXPROCS marker the testing
// package appends to benchmark names (absent when GOMAXPROCS is 1).
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
