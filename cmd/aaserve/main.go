// Command aaserve runs the anytime-anywhere engine as a live query-serving
// HTTP server: the engine converges and absorbs dynamic events in the
// background while every request is answered from the latest published
// snapshot.
//
// Serve a generated scale-free graph:
//
//	aaserve -n 2000 -seed 1 -p 8 -addr :8080
//
// Serve a graph file (Pajek .net or plain edge list) with checkpointing:
//
//	aaserve -graph web.net -checkpoint web.ckpt -addr :8080
//
// If the checkpoint file already exists the engine resumes from it instead
// of recomputing; on SIGINT/SIGTERM the server drains in-flight requests,
// converges the admitted events, and rewrites the checkpoint.
//
// Endpoints: GET /v1/topk?k=K, GET /v1/closeness/{vertex},
// GET /v1/snapshot, POST /v1/events, GET /healthz, GET /metrics.
// Feed it live events with: aastream -mode replay -target http://host:8080.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"anytime"
	"anytime/internal/obs"
)

func main() {
	var (
		n       = flag.Int("n", 2000, "generated base graph size (ignored with -graph)")
		m       = flag.Int("m", 2, "generated graph attachment edges per vertex")
		seed    = flag.Int64("seed", 1, "seed for generation and partitioning")
		graphF  = flag.String("graph", "", "graph file to serve (.net Pajek, else edge list)")
		p       = flag.Int("p", 8, "simulated processors")
		publish = flag.Int("publish", 1, "publish a snapshot every K RC steps")
		queue   = flag.Int("queue", 4096, "admission queue capacity (events)")
		topkIdx = flag.Int("topk-index", 64, "precomputed top-k index size")
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		ckpt    = flag.String("checkpoint", "", "checkpoint path (restored at start if present, written on shutdown)")
		traceF  = flag.String("trace", "", "record phase-level spans and write them (JSONL) to this file on shutdown; convert with aatrace")
		pprofF  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logFmt  = flag.String("log-format", "", "structured driver logs: text or json (default: no structured logs)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aaserve: %v\n", err)
		os.Exit(1)
	}

	opts := anytime.DefaultOptions()
	opts.P = *p
	opts.Seed = *seed
	opts.Strategy = anytime.AutoPS
	var tracer *obs.Tracer
	if *traceF != "" {
		tracer = obs.NewTracer(obs.DefaultCapacity)
		opts.Obs = tracer
	}

	e, err := buildEngine(*graphF, *n, *m, *seed, *ckpt, opts)
	if err != nil {
		fail(err)
	}
	cfg := anytime.ServeConfig{
		PublishEvery:   *publish,
		QueueCapacity:  *queue,
		TopKIndex:      *topkIdx,
		CheckpointPath: *ckpt,
	}
	if *logFmt != "" {
		if cfg.Log, err = obs.NewLogger(os.Stderr, *logFmt); err != nil {
			fail(err)
		}
	}
	srv, err := anytime.NewServer(e, cfg)
	if err != nil {
		fail(err)
	}
	v := srv.View()
	fmt.Printf("aaserve: serving %d vertices / %d edges on %s (P=%d, publish every %d steps, converged=%v)\n",
		v.Vertices, v.Edges, *addr, *p, *publish, v.Converged)

	handler := srv.Handler()
	if *pprofF {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight requests against the live store,
	// then drain+converge the engine and write the checkpoint.
	fmt.Fprintln(os.Stderr, "aaserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "aaserve: http shutdown: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		fail(err)
	}
	final := srv.View()
	fmt.Printf("aaserve: stopped at snapshot v%d (%d vertices, %d RC steps, converged=%v)\n",
		final.Version, final.Vertices, final.Metrics.RCSteps, final.Converged)
	if *ckpt != "" {
		fmt.Printf("aaserve: checkpoint written to %s\n", *ckpt)
	}
	if tracer != nil {
		// Atomic finalize (temp file + fsync + rename): a reader never
		// observes a half-written trace, even if shutdown is interrupted.
		if err := obs.WriteJSONLFile(*traceF, tracer.Spans()); err != nil {
			fail(err)
		}
		fmt.Printf("aaserve: %d spans written to %s (%d dropped by the ring)\n",
			tracer.Len(), *traceF, tracer.Dropped())
	}
}

// buildEngine restores from the checkpoint when present, otherwise builds
// a fresh engine over the given (loaded or generated) graph.
func buildEngine(graphFile string, n, m int, seed int64, ckpt string, opts anytime.Options) (*anytime.Engine, error) {
	if ckpt != "" {
		if f, err := os.Open(ckpt); err == nil {
			defer f.Close()
			e, err := anytime.RestoreEngine(f, opts)
			if err != nil {
				return nil, fmt.Errorf("restoring %s: %w", ckpt, err)
			}
			fmt.Printf("aaserve: resumed from checkpoint %s\n", ckpt)
			return e, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	var (
		g   *anytime.Graph
		err error
	)
	if graphFile != "" {
		f, ferr := os.Open(graphFile)
		if ferr != nil {
			return nil, ferr
		}
		defer f.Close()
		if filepath.Ext(graphFile) == ".net" {
			g, err = anytime.ReadPajek(f)
		} else {
			g, err = anytime.ReadEdgeList(f)
		}
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", graphFile, err)
		}
	} else {
		if g, err = anytime.ScaleFreeGraph(n, m, seed); err != nil {
			return nil, err
		}
	}
	return anytime.NewEngine(g, opts)
}
