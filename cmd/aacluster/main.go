// Command aacluster runs the anytime-anywhere engine as N real OS
// processes, one rank per process, over the TCP transport.
//
// Every process builds the same deterministic graph (same -n/-m/-seed),
// partitions it identically (checksum-verified), computes its local APSP,
// and recombines to convergence over the wire. Rank 0 can dump the full
// distance matrix and verify it against the exact in-process oracle.
//
// Join an existing mesh (one invocation per rank):
//
//	aacluster -rank 0 -peers 127.0.0.1:9000,127.0.0.1:9001 -n 2000
//	aacluster -rank 1 -peers 127.0.0.1:9000,127.0.0.1:9001 -n 2000
//
// Or let one invocation launch the whole mesh locally:
//
//	aacluster -launch -p 3 -n 2000 -verify
//
// A manifest file (lines of "<rank> <host:port>", # comments) replaces
// -peers for static deployments:
//
//	aacluster -rank 2 -manifest cluster.manifest -n 50000
//
// The calibrate mode measures the real transport's LogP parameters
// (o, g, L) with ping-pong and burst round trips between ranks 0 and 1
// and prints the model row to feed back into the simulator:
//
//	aacluster -launch -p 2 -calibrate
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/rank"
	"anytime/internal/sssp"
	"anytime/internal/transport"
)

func main() {
	var (
		rankID    = flag.Int("rank", -1, "this process's rank (0..P-1)")
		peersFlag = flag.String("peers", "", "comma-separated addresses, rank = position")
		manifest  = flag.String("manifest", "", "manifest file: lines of \"<rank> <host:port>\"")
		launch    = flag.Bool("launch", false, "spawn the whole mesh locally as child processes")
		procs     = flag.Int("p", 3, "ranks to launch (with -launch)")

		n       = flag.Int("n", 2000, "graph size")
		m       = flag.Int("m", 2, "scale-free attachment degree")
		seed    = flag.Int64("seed", 1, "graph + partition seed")
		workers = flag.Int("workers", 2, "worker goroutines per rank")
		tile    = flag.Int("tile", 32, "blocked-refinement pivot tile")
		steps   = flag.Int("max-steps", 0, "recombination step bound (0 = default)")

		calibrate = flag.Bool("calibrate", false, "measure o/g/L over the real transport and exit")
		rounds    = flag.Int("rounds", 32, "calibration ping-pong rounds")
		verify    = flag.Bool("verify", false, "rank 0: check the result against the exact oracle")
		out       = flag.String("out", "", "rank 0: write the distance matrix (text) here")
		metrics   = flag.String("metrics", "", "serve aa_transport_* metrics on this address (e.g. :9090)")
	)
	flag.Parse()

	if *launch {
		os.Exit(launchMesh(*procs, *calibrate))
	}
	peers, err := loadPeers(*peersFlag, *manifest)
	if err != nil {
		fatal(err)
	}
	if *rankID < 0 || *rankID >= len(peers) {
		fatal(fmt.Errorf("-rank %d out of range for %d peers", *rankID, len(peers)))
	}
	tr, err := transport.NewTCP(peers, *rankID, transport.TCPOptions{})
	if err != nil {
		fatal(fmt.Errorf("joining mesh: %w", err))
	}
	defer tr.Close()
	if *metrics != "" {
		serveMetrics(*metrics, tr)
	}

	if *calibrate {
		cal, err := transport.Calibrate(tr, *rounds)
		if err != nil {
			fatal(err)
		}
		if tr.Rank() == 0 {
			fmt.Println(cal.String())
			model := cal.Model(tr.Size())
			fmt.Printf("model: L=%v o=%v g=%v/B P=%d\n", model.L, model.O, model.G, model.P)
		}
		return
	}

	g, err := buildGraph(*n, *m, *seed)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	r, err := rank.New(tr, rank.Config{
		Graph: g, Seed: *seed, Workers: *workers, TileSize: *tile, MaxSteps: *steps,
	})
	if err != nil {
		fatal(err)
	}
	setup := time.Since(start)
	nsteps, err := r.Run()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	st, ts := r.Stats(), tr.Stats()
	fmt.Printf("rank %d/%d: converged in %d steps, %v (setup %v); ia=%d relax=%d reships=%d; sent %d msgs / %d B, recv %d msgs / %d B, reconnects=%d\n",
		tr.Rank(), tr.Size(), nsteps, elapsed.Round(time.Millisecond), setup.Round(time.Millisecond),
		st.IAOps, st.RelaxOps, st.Reships,
		ts.MessagesSent, ts.BytesSent, ts.MessagesRecv, ts.BytesRecv, ts.Reconnects)

	// GatherDistances is a collective, so whether to gather is rank 0's
	// decision, broadcast to everyone — a rank joined without -verify/-out
	// must still participate when rank 0 wants the matrix.
	want := byte(0)
	if tr.Rank() == 0 && (*verify || *out != "") {
		want = 1
	}
	msg, err := tr.Broadcast(0, transport.Message{Tag: transport.TagControl, Bytes: 1, Payload: []byte{want}})
	if err != nil {
		fatal(err)
	}
	if tr.Rank() != 0 {
		want = msg.Payload.([]byte)[0]
	}
	if want == 0 {
		return
	}
	dist, err := r.GatherDistances()
	if err != nil {
		fatal(err)
	}
	if tr.Rank() != 0 {
		return
	}
	if *verify {
		if err := verifyOracle(g, dist); err != nil {
			fatal(err)
		}
		fmt.Printf("rank 0: verified %d x %d distances against the exact oracle\n", len(dist), len(dist))
	}
	if *out != "" {
		if err := writeDistances(*out, dist); err != nil {
			fatal(err)
		}
		fmt.Printf("rank 0: wrote %s\n", *out)
	}
}

// launchMesh reserves P localhost ports and re-execs this binary once per
// rank, forwarding every non-launch flag. It returns the exit code.
func launchMesh(p int, calibrate bool) int {
	if p < 2 {
		fmt.Fprintln(os.Stderr, "aacluster: -launch needs -p >= 2")
		return 2
	}
	if calibrate {
		p = maxInt(p, 2)
	}
	addrs, err := freePorts(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
		return 1
	}
	// Forward everything except the launch-mode flags.
	var passthrough []string
	skip := map[string]bool{"launch": true, "p": true, "rank": true, "peers": true, "manifest": true, "metrics": true}
	flag.Visit(func(f *flag.Flag) {
		if !skip[f.Name] {
			passthrough = append(passthrough, "-"+f.Name+"="+f.Value.String())
		}
	})
	cmds := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		args := append([]string{
			"-rank=" + strconv.Itoa(r),
			"-peers=" + strings.Join(addrs, ","),
		}, passthrough...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = prefixWriter(fmt.Sprintf("[rank %d] ", r), os.Stdout)
		cmd.Stderr = prefixWriter(fmt.Sprintf("[rank %d] ", r), os.Stderr)
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: starting rank %d: %v\n", r, err)
			return 1
		}
		cmds[r] = cmd
	}
	code := 0
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: rank %d: %v\n", r, err)
			code = 1
		}
	}
	return code
}

func loadPeers(inline, manifestPath string) ([]transport.Peer, error) {
	if inline != "" && manifestPath != "" {
		return nil, fmt.Errorf("use -peers or -manifest, not both")
	}
	if inline != "" {
		var peers []transport.Peer
		for i, addr := range strings.Split(inline, ",") {
			peers = append(peers, transport.Peer{Rank: i, Addr: strings.TrimSpace(addr)})
		}
		return peers, nil
	}
	if manifestPath == "" {
		return nil, fmt.Errorf("no mesh: pass -peers or -manifest (or -launch)")
	}
	f, err := os.Open(manifestPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var peers []transport.Peer
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<rank> <host:port>\", got %q", manifestPath, line, text)
		}
		r, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad rank: %w", manifestPath, line, err)
		}
		peers = append(peers, transport.Peer{Rank: r, Addr: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return peers, nil
}

func buildGraph(n, m int, seed int64) (*graph.Graph, error) {
	g, err := gen.BarabasiAlbert(n, m, gen.Weights{Min: 1, Max: 4}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}

func verifyOracle(g *graph.Graph, dist [][]graph.Dist) error {
	want := sssp.APSP(g)
	for v := range want {
		for u := range want[v] {
			if dist[v][u] != want[v][u] {
				return fmt.Errorf("verify: dist[%d][%d] = %d, oracle %d", v, u, dist[v][u], want[v][u])
			}
		}
	}
	return nil
}

func writeDistances(path string, dist [][]graph.Dist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, row := range dist {
		for u, d := range row {
			if u > 0 {
				w.WriteByte(' ')
			}
			if d == graph.InfDist {
				w.WriteString("inf")
			} else {
				w.WriteString(strconv.FormatUint(uint64(d), 10))
			}
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func serveMetrics(addr string, tr transport.Transport) {
	reg := obs.NewRegistry()
	transport.RegisterMetrics(reg, tr, "tcp")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteTo(w)
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: metrics server: %v\n", err)
		}
	}()
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// prefixWriter tags every line of child output with the rank.
type lineWriter struct {
	prefix string
	dst    *os.File
	buf    []byte
}

func prefixWriter(prefix string, dst *os.File) *lineWriter {
	return &lineWriter{prefix: prefix, dst: dst}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			break
		}
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
	os.Exit(1)
}
