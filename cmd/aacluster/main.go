// Command aacluster runs the anytime-anywhere engine as N real OS
// processes, one rank per process, over the TCP transport.
//
// Every process builds the same deterministic graph (same -n/-m/-seed),
// partitions it identically (checksum-verified), computes its local APSP,
// and recombines to convergence over the wire. Rank 0 can dump the full
// distance matrix and verify it against the exact in-process oracle.
//
// Join an existing mesh (one invocation per rank):
//
//	aacluster -rank 0 -peers 127.0.0.1:9000,127.0.0.1:9001 -n 2000
//	aacluster -rank 1 -peers 127.0.0.1:9000,127.0.0.1:9001 -n 2000
//
// Or let one invocation launch the whole mesh locally:
//
//	aacluster -launch -p 3 -n 2000 -verify
//
// A manifest file (lines of "<rank> <host:port> [obs-host:port]", #
// comments) replaces -peers for static deployments; the optional third
// column declares the rank's observability port (equivalent to -obs):
//
//	aacluster -rank 2 -manifest cluster.manifest -n 50000
//
// Every rank can serve its own observability plane — Prometheus /metrics,
// /trace.jsonl, and (with -pprof) /debug/pprof — on -obs. In launch mode
// obs ports are assigned automatically and -metrics serves the *merged*
// cluster view instead: every per-rank series re-labeled with rank="i"
// plus computed cross-rank series (aa_cluster_ranks_up, aa_step_imbalance,
// outage-episode counters), tolerant of ranks dying mid-scrape:
//
//	aacluster -launch 3 -n 2000 -metrics :9090 -trace-dir ./traces
//
// The calibrate mode measures the real transport's LogP parameters
// (o, g, L) with ping-pong and burst round trips between ranks 0 and 1
// and prints the model row to feed back into the simulator:
//
//	aacluster -launch -p 2 -calibrate
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"anytime/internal/change"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/rank"
	"anytime/internal/sssp"
	"anytime/internal/transport"
)

func main() {
	var (
		rankID    = flag.Int("rank", -1, "this process's rank (0..P-1)")
		peersFlag = flag.String("peers", "", "comma-separated addresses, rank = position")
		manifest  = flag.String("manifest", "", "manifest file: lines of \"<rank> <host:port>\"")
		launch    = flag.Bool("launch", false, "spawn the whole mesh locally as child processes")
		procs     = flag.Int("p", 3, "ranks to launch (with -launch)")

		n       = flag.Int("n", 2000, "graph size")
		m       = flag.Int("m", 2, "scale-free attachment degree")
		seed    = flag.Int64("seed", 1, "graph + partition seed")
		workers = flag.Int("workers", 2, "worker goroutines per rank")
		tile    = flag.Int("tile", 32, "blocked-refinement pivot tile")
		steps   = flag.Int("max-steps", 0, "recombination step bound (0 = default)")

		calibrate = flag.Bool("calibrate", false, "measure o/g/L over the real transport and exit")
		rounds    = flag.Int("rounds", 32, "calibration ping-pong rounds")
		calOut    = flag.String("calibrate-out", "", "rank 0: write the calibration JSON here (feed to aaexperiments -model)")
		verify    = flag.Bool("verify", false, "rank 0: check the result against the exact oracle")
		out       = flag.String("out", "", "rank 0: write the distance matrix (text) here")
		metrics   = flag.String("metrics", "", "serve metrics on this address (with -launch: the merged cluster view)")

		obsFlag        = flag.String("obs", "", "serve this rank's obs plane (/metrics, /trace.jsonl) on this address (auto-assigned with -launch; manifest column 3 also sets it)")
		pprofFlag      = flag.Bool("pprof", false, "expose /debug/pprof on the rank obs server")
		trace          = flag.String("trace", "", "write this rank's span trace (JSONL) here, flushed periodically, on exit, and on SIGTERM")
		traceDir       = flag.String("trace-dir", "", "with -launch: write per-rank traces into this directory (rank<i>.jsonl; merge with aatrace -merge)")
		logFormat      = flag.String("log-format", "", "structured log format: text or json (default: no structured logs)")
		scrapeInterval = flag.Duration("scrape-interval", 2*time.Second, "with -launch -metrics: background scrape cadence of the merged aggregator")

		hbInterval   = flag.Duration("hb-interval", 0, "heartbeat interval (0 disables failure detection)")
		hbTimeout    = flag.Duration("hb-timeout", 0, "silence after which a peer is down (default 4x -hb-interval)")
		shardDir     = flag.String("shard-dir", "", "write this rank's recovery shard here every -shard-every steps")
		shardEvery   = flag.Int("shard-every", 1, "recovery-shard cadence in RC steps")
		rejoinWait   = flag.Duration("rejoin-wait", 0, "how long survivors idle in degraded mode waiting for a rejoin")
		minSteps     = flag.Int("min-steps", 0, "force at least this many RC steps before convergence may stop")
		stepThrottle = flag.Duration("step-throttle", 0, "sleep this long after every RC step")
		rejoin       = flag.Bool("rejoin", false, "join as a restarted rank: rejoin the running mesh and restore from the recovery shard")
		supervise    = flag.Bool("supervise", false, "with -launch: relaunch a crashed rank (with -rejoin) after backoff")
		events       = flag.Int("events", 0, "rank 0: stream a dynamic vertex batch of this size into the run")
	)
	flag.CommandLine.Parse(normalizeArgs(os.Args[1:]))

	if *launch {
		os.Exit(launchMesh(launchOpts{
			p: *procs, calibrate: *calibrate, supervise: *supervise,
			hbInterval: *hbInterval, metrics: *metrics,
			traceDir: *traceDir, scrape: *scrapeInterval,
		}))
	}
	peers, manifestObs, err := loadPeers(*peersFlag, *manifest)
	if err != nil {
		fatal(err)
	}
	if *rankID < 0 || *rankID >= len(peers) {
		fatal(fmt.Errorf("-rank %d out of range for %d peers", *rankID, len(peers)))
	}
	opts := transport.TCPOptions{HeartbeatInterval: *hbInterval, HeartbeatTimeout: *hbTimeout}
	var tr *transport.TCP
	if *rejoin {
		tr, err = transport.RejoinTCP(peers, *rankID, opts)
	} else {
		tr, err = transport.NewTCP(peers, *rankID, opts)
	}
	if err != nil {
		fatal(fmt.Errorf("joining mesh: %w", err))
	}
	defer tr.Close()

	var logger *slog.Logger
	if *logFormat != "" {
		if logger, err = obs.NewLogger(os.Stderr, *logFormat); err != nil {
			fatal(err)
		}
	}
	obsAddr := *obsFlag
	if obsAddr == "" && *rankID < len(manifestObs) {
		obsAddr = manifestObs[*rankID]
	}
	if obsAddr == "" {
		obsAddr = *metrics // pre-obs-plane spelling of the same thing
	}
	var tracer *obs.Tracer
	if *trace != "" || obsAddr != "" {
		tracer = obs.NewTracer(0)
	}
	flushTrace := func() {
		if *trace == "" {
			return
		}
		if err := obs.WriteJSONLFile(*trace, tracer.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: trace flush: %v\n", err)
		}
	}
	if *trace != "" {
		// The supervised-shutdown contract: a SIGTERM (what the launch
		// parent forwards on Ctrl-C) still finalizes the trace atomically.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		go func() {
			<-sig
			flushTrace()
			os.Exit(143)
		}()
	}
	var reg *obs.Registry
	if obsAddr != "" {
		reg = obs.NewRegistry()
		transport.RegisterMetrics(reg, tr, "tcp")
		srv, err := rank.ServeObs(obsAddr, reg, tracer, *pprofFlag)
		if err != nil {
			fatal(fmt.Errorf("obs server: %w", err))
		}
		defer srv.Close()
		if logger != nil {
			logger.Info("obs server up", "rank", tr.Rank(), "addr", srv.Addr())
		}
	}

	if *calibrate {
		cal, err := transport.Calibrate(tr, *rounds)
		if err != nil {
			fatal(err)
		}
		if tr.Rank() == 0 {
			fmt.Println(cal.String())
			model := cal.Model(tr.Size())
			fmt.Printf("model: L=%v o=%v g=%v/B P=%d\n", model.L, model.O, model.G, model.P)
			if *calOut != "" {
				if err := transport.SaveCalibration(*calOut, cal); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n", *calOut)
			}
		}
		return
	}

	g, err := buildGraph(*n, *m, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := rank.Config{
		Graph: g, Seed: *seed, Workers: *workers, TileSize: *tile, MaxSteps: *steps,
		ShardDir: *shardDir, ShardEvery: *shardEvery,
		MinSteps: *minSteps, StepThrottle: *stepThrottle, RejoinWait: *rejoinWait,
		Obs: tracer, Log: logger,
	}
	if *trace != "" {
		cfg.StepHook = func(tm rank.Telemetry) {
			if tm.Step%32 == 0 {
				flushTrace()
			}
		}
	}
	start := time.Now()
	var r *rank.Runner
	if *rejoin {
		r, err = rank.Rejoin(tr, cfg)
	} else {
		r, err = rank.New(tr, cfg)
	}
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		rank.RegisterMetrics(reg, r)
	}
	if !*rejoin && tr.Rank() == 0 && *events > 0 {
		if err := r.QueueEvents(demoBatch(g.NumVertices(), *events, *seed)); err != nil {
			fatal(err)
		}
	}
	setup := time.Since(start)
	nsteps, err := r.Run()
	if err != nil {
		fatal(err)
	}
	flushTrace()
	elapsed := time.Since(start)
	st, ts := r.Stats(), tr.Stats()
	fmt.Printf("rank %d/%d: converged in %d steps, %v (setup %v); ia=%d relax=%d reships=%d events=%d; sent %d msgs / %d B, recv %d msgs / %d B, reconnects=%d retries=%d\n",
		tr.Rank(), tr.Size(), nsteps, elapsed.Round(time.Millisecond), setup.Round(time.Millisecond),
		st.IAOps, st.RelaxOps, st.Reships, st.EventsApplied,
		ts.MessagesSent, ts.BytesSent, ts.MessagesRecv, ts.BytesRecv, ts.Reconnects, ts.RetryAttempts)
	if down := r.DownSeen(); len(down) > 0 {
		fmt.Printf("rank %d: survived outage of ranks %v (degraded convergences=%d, rejoins integrated=%d)\n",
			tr.Rank(), down, st.DegradedConvergences, st.Rejoins)
	}
	if r.Degraded() {
		fmt.Printf("rank %d: WARNING: stopped in degraded mode, ranks %v still down — distances exclude their contribution\n",
			tr.Rank(), r.DownProcs())
	}

	// GatherDistances is a collective, so whether to gather is rank 0's
	// decision, broadcast to everyone — a rank joined without -verify/-out
	// must still participate when rank 0 wants the matrix.
	want := byte(0)
	if tr.Rank() == 0 && (*verify || *out != "") {
		want = 1
	}
	msg, err := tr.Broadcast(0, transport.Message{Tag: transport.TagControl, Bytes: 1, Payload: []byte{want}})
	if err != nil {
		fatal(err)
	}
	if tr.Rank() != 0 {
		want = msg.Payload.([]byte)[0]
	}
	if want == 0 {
		return
	}
	dist, err := r.GatherDistances()
	if err != nil {
		fatal(err)
	}
	if tr.Rank() != 0 {
		return
	}
	if *verify {
		if err := verifyOracle(g, dist); err != nil {
			fatal(err)
		}
		fmt.Printf("rank 0: verified %d x %d distances against the exact oracle\n", len(dist), len(dist))
	}
	if *out != "" {
		if err := writeDistances(*out, dist); err != nil {
			fatal(err)
		}
		fmt.Printf("rank 0: wrote %s\n", *out)
	}
}

// normalizeArgs lets "-launch 3" mean "-launch -p=3": a bare positive
// integer right after -launch is rewritten into the -p flag.
func normalizeArgs(args []string) []string {
	out := make([]string, 0, len(args)+1)
	for i := 0; i < len(args); i++ {
		a := args[i]
		out = append(out, a)
		if (a == "-launch" || a == "--launch") && i+1 < len(args) {
			if n, err := strconv.Atoi(args[i+1]); err == nil && n > 0 {
				out = append(out, "-p="+strconv.Itoa(n))
				i++
			}
		}
	}
	return out
}

// launchOpts is the launch-parent configuration carved out of the flags.
type launchOpts struct {
	p          int
	calibrate  bool
	supervise  bool
	hbInterval time.Duration
	metrics    string        // merged-aggregator listen address ("" disables)
	traceDir   string        // per-rank trace directory ("" disables)
	scrape     time.Duration // background aggregator scrape cadence
}

// launchMesh reserves P mesh ports plus P obs ports and re-execs this
// binary once per rank, forwarding every non-launch flag and giving each
// child its own -obs address. With supervise, a rank that dies mid-run is
// relaunched after a backoff with -rejoin, re-entering the mesh through
// the liveness plane (which supervision therefore forces on). With
// metrics, the parent runs the cluster aggregator: it scrapes every live
// rank, re-labels series with rank="i", and serves one merged /metrics
// with the computed cross-rank series. SIGINT/SIGTERM is forwarded to the
// children so their trace exporters finalize. It returns the exit code.
func launchMesh(o launchOpts) int {
	if o.p < 2 {
		fmt.Fprintln(os.Stderr, "aacluster: -launch needs -p >= 2")
		return 2
	}
	if o.calibrate {
		o.p = maxInt(o.p, 2)
	}
	ports, err := freePorts(2 * o.p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
		return 1
	}
	addrs, obsAddrs := ports[:o.p], ports[o.p:]
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
		return 1
	}
	if o.traceDir != "" {
		if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
			return 1
		}
	}
	// Forward everything except the launch/supervision-mode flags and the
	// obs settings the parent assigns per rank.
	var passthrough []string
	skip := map[string]bool{
		"launch": true, "p": true, "rank": true, "peers": true, "manifest": true,
		"metrics": true, "supervise": true, "rejoin": true,
		"obs": true, "trace": true, "trace-dir": true, "scrape-interval": true,
	}
	flag.Visit(func(f *flag.Flag) {
		if !skip[f.Name] {
			passthrough = append(passthrough, "-"+f.Name+"="+f.Value.String())
		}
	})
	if o.supervise && o.hbInterval <= 0 {
		// A rejoin needs failure detection on every rank; default it on.
		passthrough = append(passthrough, "-hb-interval=500ms")
	}
	var (
		liveMu   sync.Mutex
		live     = map[int]*exec.Cmd{}
		shutdown atomic.Bool
	)
	spawn := func(r, attempt int, rejoin bool) (*exec.Cmd, error) {
		args := append([]string{
			"-rank=" + strconv.Itoa(r),
			"-peers=" + strings.Join(addrs, ","),
			"-obs=" + obsAddrs[r],
		}, passthrough...)
		if o.traceDir != "" {
			// Relaunched generations get distinct files so aatrace -merge
			// sees the pre-kill and post-rejoin segments side by side.
			name := fmt.Sprintf("rank%d.jsonl", r)
			if attempt > 0 {
				name = fmt.Sprintf("rank%d.rejoin%d.jsonl", r, attempt)
			}
			args = append(args, "-trace="+filepath.Join(o.traceDir, name))
		}
		if rejoin {
			args = append(args, "-rejoin")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = prefixWriter(fmt.Sprintf("[rank %d] ", r), os.Stdout)
		cmd.Stderr = prefixWriter(fmt.Sprintf("[rank %d] ", r), os.Stderr)
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		liveMu.Lock()
		live[r] = cmd
		liveMu.Unlock()
		return cmd, nil
	}
	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, o.p)
	watch := func(r int, cmd *exec.Cmd) {
		go func() {
			err := cmd.Wait()
			liveMu.Lock()
			if live[r] == cmd {
				delete(live, r)
			}
			liveMu.Unlock()
			exits <- exit{r, err}
		}()
	}

	// Forward a shutdown signal to every child: their trace exporters
	// flush on SIGTERM, so Ctrl-C on the parent still finalizes traces.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		shutdown.Store(true)
		liveMu.Lock()
		for _, cmd := range live {
			cmd.Process.Signal(syscall.SIGTERM)
		}
		liveMu.Unlock()
	}()

	if o.metrics != "" {
		agg := obs.NewHTTPAggregator(obsAddrs, 2*time.Second)
		mux := http.NewServeMux()
		mux.Handle("/metrics", agg)
		ln, err := net.Listen("tcp", o.metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: merged metrics server: %v\n", err)
			return 1
		}
		defer ln.Close()
		go http.Serve(ln, mux)
		if o.scrape > 0 {
			// Keep scraping in the background so outage episodes are
			// tracked even while no external scraper is attached.
			ticker := time.NewTicker(o.scrape)
			defer ticker.Stop()
			go func() {
				for range ticker.C {
					agg.Scrape(context.Background())
				}
			}()
		}
		fmt.Printf("aacluster: merged cluster metrics on http://%s/metrics (%d ranks)\n", ln.Addr(), o.p)
	}

	for r := 0; r < o.p; r++ {
		cmd, err := spawn(r, 0, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aacluster: starting rank %d: %v\n", r, err)
			return 1
		}
		watch(r, cmd)
	}
	const maxRestarts = 3
	restarts := make([]int, o.p)
	code, running := 0, o.p
	for running > 0 {
		e := <-exits
		// Rank 0 coordinates votes and rejoins; its death ends the run.
		if e.err != nil && o.supervise && !shutdown.Load() && e.rank != 0 && restarts[e.rank] < maxRestarts {
			restarts[e.rank]++
			backoff := time.Duration(restarts[e.rank]) * 500 * time.Millisecond
			fmt.Fprintf(os.Stderr, "aacluster: rank %d died (%v); relaunching with -rejoin in %v (attempt %d/%d)\n",
				e.rank, e.err, backoff, restarts[e.rank], maxRestarts)
			time.Sleep(backoff)
			cmd, err := spawn(e.rank, restarts[e.rank], true)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aacluster: relaunching rank %d: %v\n", e.rank, err)
				code = 1
				running--
				continue
			}
			watch(e.rank, cmd)
			continue
		}
		if e.err != nil && !shutdown.Load() {
			fmt.Fprintf(os.Stderr, "aacluster: rank %d: %v\n", e.rank, e.err)
			code = 1
		}
		running--
	}
	return code
}

// demoBatch builds the -events vertex batch: k new vertices, each wired to
// a deterministic existing vertex and chained to its batch predecessor —
// enough structure to exercise internal, external, and cross-batch edges
// over the wire.
func demoBatch(n, k int, seed int64) change.Event {
	b := &change.VertexBatch{NumVertices: k}
	for i := 0; i < k; i++ {
		exist := int32((seed + int64(i)*2654435761) % int64(n))
		if exist < 0 {
			exist += int32(n)
		}
		b.External = append(b.External, change.ExternalEdge{New: int32(i), Existing: exist, Weight: graph.Weight(1 + i%4)})
		if i > 0 {
			b.Internal = append(b.Internal, change.InternalEdge{A: int32(i - 1), B: int32(i), Weight: graph.Weight(1 + (i+1)%4)})
		}
	}
	return change.Event{Batch: b}
}

// loadPeers resolves the mesh membership from -peers or a manifest file.
// Manifest lines are "<rank> <host:port>" with an optional third column
// declaring the rank's observability address; the second return value maps
// rank -> obs address ("" where undeclared).
func loadPeers(inline, manifestPath string) ([]transport.Peer, []string, error) {
	if inline != "" && manifestPath != "" {
		return nil, nil, fmt.Errorf("use -peers or -manifest, not both")
	}
	if inline != "" {
		var peers []transport.Peer
		for i, addr := range strings.Split(inline, ",") {
			peers = append(peers, transport.Peer{Rank: i, Addr: strings.TrimSpace(addr)})
		}
		return peers, nil, nil
	}
	if manifestPath == "" {
		return nil, nil, fmt.Errorf("no mesh: pass -peers or -manifest (or -launch)")
	}
	f, err := os.Open(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var peers []transport.Peer
	var obsAddrs []string
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, nil, fmt.Errorf("%s:%d: want \"<rank> <host:port> [obs-host:port]\", got %q", manifestPath, line, text)
		}
		r, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad rank: %w", manifestPath, line, err)
		}
		peers = append(peers, transport.Peer{Rank: r, Addr: fields[1]})
		for r >= len(obsAddrs) {
			obsAddrs = append(obsAddrs, "")
		}
		if len(fields) == 3 {
			obsAddrs[r] = fields[2]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return peers, obsAddrs, nil
}

func buildGraph(n, m int, seed int64) (*graph.Graph, error) {
	g, err := gen.BarabasiAlbert(n, m, gen.Weights{Min: 1, Max: 4}, seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, seed)
	return g, nil
}

func verifyOracle(g *graph.Graph, dist [][]graph.Dist) error {
	want := sssp.APSP(g)
	for v := range want {
		for u := range want[v] {
			if dist[v][u] != want[v][u] {
				return fmt.Errorf("verify: dist[%d][%d] = %d, oracle %d", v, u, dist[v][u], want[v][u])
			}
		}
	}
	return nil
}

func writeDistances(path string, dist [][]graph.Dist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, row := range dist {
		for u, d := range row {
			if u > 0 {
				w.WriteByte(' ')
			}
			if d == graph.InfDist {
				w.WriteString("inf")
			} else {
				w.WriteString(strconv.FormatUint(uint64(d), 10))
			}
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func freePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// prefixWriter tags every line of child output with the rank.
type lineWriter struct {
	prefix string
	dst    *os.File
	buf    []byte
}

func prefixWriter(prefix string, dst *os.File) *lineWriter {
	return &lineWriter{prefix: prefix, dst: dst}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			break
		}
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aacluster: %v\n", err)
	os.Exit(1)
}
