// Command aatrace inspects and converts phase-span traces recorded by the
// engine's observability layer (aaserve -trace, aaexperiments -trace).
//
// Print a summary of a recorded run:
//
//	aatrace run.jsonl
//
// Convert it to a Chrome trace-event file (load in chrome://tracing or
// https://ui.perfetto.dev), one timeline lane per simulated processor:
//
//	aatrace -chrome trace.json run.jsonl
//
// The -clock flag picks which time base the Chrome timeline uses: "wall"
// (real time inside the engine) or "virtual" (the simulated LogP cluster
// time — the paper's cost model). Summaries always show both.
//
// Merge mode stitches N per-rank trace files (aacluster -trace-dir) into
// one step-aligned distributed timeline, one lane per rank. Ranks' clocks
// are aligned on their shared RC-step markers — the BSP step discipline
// guarantees rc-step span starts coincide across ranks — so a
// SIGKILL -> degraded -> rejoin sequence reads as one coherent timeline:
//
//	aatrace -merge -chrome cluster.json traces/rank0.jsonl traces/rank1.jsonl traces/rank2.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"anytime/internal/obs"
)

func main() {
	var (
		chrome = flag.String("chrome", "", "write a Chrome trace-event JSON file to this path")
		clock  = flag.String("clock", "wall", "Chrome timeline time base: wall or virtual")
		merge  = flag.Bool("merge", false, "merge N per-rank trace files into one step-aligned timeline, one lane per rank")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aatrace: %v\n", err)
		os.Exit(1)
	}
	virtual := false
	switch *clock {
	case "wall":
	case "virtual":
		virtual = true
	default:
		fail(fmt.Errorf("unknown -clock %q (want wall or virtual)", *clock))
	}

	var spans []obs.Span
	byRank := false
	if *merge {
		if flag.NArg() < 1 {
			fail(fmt.Errorf("-merge needs at least one per-rank trace file"))
		}
		files := make([][]obs.Span, 0, flag.NArg())
		for _, path := range flag.Args() {
			fs, err := readSpans(path)
			if err != nil {
				fail(err)
			}
			files = append(files, fs)
		}
		spans = obs.MergeTraces(files)
		byRank = true
		if len(spans) == 0 {
			fail(fmt.Errorf("no spans across %d files", flag.NArg()))
		}
	} else {
		var in io.Reader = os.Stdin
		name := "stdin"
		if flag.NArg() > 1 {
			fail(fmt.Errorf("at most one input file without -merge (got %d)", flag.NArg()))
		}
		if flag.NArg() == 1 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fail(err)
			}
			defer f.Close()
			in, name = f, flag.Arg(0)
		}
		var err error
		spans, err = obs.ReadJSONL(in)
		if err != nil {
			fail(fmt.Errorf("reading %s: %w", name, err))
		}
		if len(spans) == 0 {
			fail(fmt.Errorf("%s holds no spans", name))
		}
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fail(err)
		}
		if byRank {
			err = obs.WriteChromeTraceByRank(f, spans, virtual)
		} else {
			err = obs.WriteChromeTrace(f, spans, virtual)
		}
		if err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		lanes := "processor"
		if byRank {
			lanes = "rank"
		}
		fmt.Printf("aatrace: %d spans -> %s (%s clock, one lane per %s); open in chrome://tracing or ui.perfetto.dev\n",
			len(spans), *chrome, *clock, lanes)
		return
	}

	summarize(spans)
}

// readSpans loads one JSONL trace file.
func readSpans(path string) ([]obs.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spans, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return spans, nil
}

// kindAgg aggregates one span kind.
type kindAgg struct {
	count      int
	wall, virt time.Duration
	value      int64
}

// summarize prints the per-kind and per-processor rollups.
func summarize(spans []obs.Span) {
	byKind := map[obs.Kind]*kindAgg{}
	byProc := map[int32]*kindAgg{}
	steps := map[int32]bool{}
	for _, s := range spans {
		k, ok := byKind[s.Kind]
		if !ok {
			k = &kindAgg{}
			byKind[s.Kind] = k
		}
		k.count++
		k.wall += s.WallDur
		k.virt += s.VirtDur
		k.value += s.Value
		if s.Proc >= 0 {
			p, ok := byProc[s.Proc]
			if !ok {
				p = &kindAgg{}
				byProc[s.Proc] = p
			}
			p.count++
			p.wall += s.WallDur
			p.virt += s.VirtDur
		}
		steps[s.Step] = true
	}

	fmt.Printf("%d spans, %d distinct steps\n\n", len(spans), len(steps))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tspans\twall\tvirtual\tvalue")
	kinds := make([]obs.Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		a := byKind[k]
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%d\n",
			k, a.count, a.wall.Round(time.Microsecond), a.virt.Round(time.Microsecond), a.value)
	}
	w.Flush()

	if len(byProc) == 0 {
		return
	}
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "proc\tspans\twall\tvirtual")
	procs := make([]int32, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var virts []time.Duration
	for _, p := range procs {
		a := byProc[p]
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\n",
			p, a.count, a.wall.Round(time.Microsecond), a.virt.Round(time.Microsecond))
		virts = append(virts, a.virt)
	}
	w.Flush()
	fmt.Printf("\nvirtual-time imbalance across processors (max/mean): %.3f\n", obs.Imbalance(virts))
}
