// Command aacentral runs the anytime-anywhere closeness-centrality engine
// on a graph, optionally injecting dynamic vertex additions mid-analysis,
// and prints the top-ranked vertices plus the engine's cost metrics.
//
// Usage:
//
//	aagen -kind ba -n 2000 | aacentral -p 8 -add 100 -at 2 -strategy cutedge
package main

import (
	"flag"
	"fmt"
	"os"

	"anytime"
)

func main() {
	var (
		p        = flag.Int("p", 8, "simulated processors")
		strategy = flag.String("strategy", "roundrobin", "vertex-addition strategy: roundrobin | cutedge | repartition | auto")
		add      = flag.Int("add", 0, "number of vertices to add dynamically (0 = static analysis)")
		at       = flag.Int("at", 0, "RC step at which the additions arrive")
		top      = flag.Int("top", 10, "how many top-closeness vertices to print")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "edgelist", "input: edgelist | pajek")
		verify   = flag.Bool("verify", false, "cross-check against the sequential oracle (slow)")
		ckptOut  = flag.String("checkpoint", "", "write an engine checkpoint to this file after convergence")
		ckptIn   = flag.String("restore", "", "restore the engine from this checkpoint instead of starting fresh (stdin graph ignored)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "aacentral: %v\n", err)
		os.Exit(1)
	}

	var g *anytime.Graph
	var err error
	switch *format {
	case "edgelist":
		g, err = anytime.ReadEdgeList(os.Stdin)
	case "pajek":
		g, err = anytime.ReadPajek(os.Stdin)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}

	opts := anytime.DefaultOptions()
	opts.P = *p
	opts.Seed = *seed
	switch *strategy {
	case "roundrobin":
		opts.Strategy = anytime.RoundRobinPS
	case "cutedge":
		opts.Strategy = anytime.CutEdgePS
	case "repartition":
		opts.Strategy = anytime.RepartitionS
	case "auto":
		opts.Strategy = anytime.AutoPS
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	var e *anytime.Engine
	if *ckptIn != "" {
		f, err := os.Open(*ckptIn)
		if err != nil {
			fail(err)
		}
		e, err = anytime.RestoreEngine(f, opts)
		f.Close()
		if err != nil {
			fail(err)
		}
		g = e.Graph()
		fmt.Printf("restored from %s at RC step %d (%d vertices)\n",
			*ckptIn, e.StepsTaken(), g.NumVertices())
	} else {
		e, err = anytime.NewEngine(g, opts)
		if err != nil {
			fail(err)
		}
	}
	for i := 0; i < *at && e.Step(); i++ {
	}
	if *add > 0 {
		batch, err := anytime.CommunityBatch(g, *add, 1.5, *seed+7)
		if err != nil {
			fail(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			fail(err)
		}
		fmt.Printf("injected %d new vertices (%d edges) at RC step %d using %s\n",
			batch.NumVertices, batch.NumEdges(), e.StepsTaken(), opts.Strategy)
	}
	e.Run()

	snap := e.Snapshot()
	fmt.Printf("converged after %d RC steps; %d vertices, %d edges\n",
		e.StepsTaken(), e.Graph().NumVertices(), e.Graph().NumEdges())
	fmt.Printf("top %d by closeness:\n", *top)
	for rank, v := range snap.TopK(*top) {
		fmt.Printf("  %2d. vertex %-8d C=%.6g  degree=%d\n",
			rank+1, v, snap.Closeness[v], e.Graph().Degree(v))
	}
	m := e.Metrics()
	fmt.Printf("metrics: virtual=%v wall=%v messages=%d bytes=%d newCutEdges=%d\n",
		m.VirtualTime.Round(1000), m.WallTime.Round(1000),
		m.Comm.Messages, m.Comm.Bytes, m.NewCutEdges)

	if *ckptOut != "" {
		if err := e.WriteCheckpointFile(*ckptOut); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptOut)
	}

	if *verify {
		exact := anytime.Closeness(e.Graph())
		worst := 0.0
		for v := range exact {
			d := exact[v] - snap.Closeness[v]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("verification: max |engine - oracle| closeness error = %g\n", worst)
		if worst > 1e-12 {
			fail(fmt.Errorf("verification failed"))
		}
	}
}
