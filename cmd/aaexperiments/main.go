// Command aaexperiments regenerates the paper's evaluation tables/figures
// (Figs. 4-8 and the LogP analysis-bounds check) as text tables.
//
// Usage:
//
//	aaexperiments [-n 1200] [-p 8] [-seed 1] [-quick] [-fig fig5]
//
// Without -fig, every experiment runs in paper order. Scales default to a
// laptop-size shrink of the paper's n=50,000 / P=16 testbed; batch sizes
// scale proportionally, so the comparative shapes are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"anytime/internal/harness"
	"anytime/internal/obs"
	"anytime/internal/transport"
)

func main() {
	var (
		n     = flag.Int("n", 1200, "base graph size (paper: 50000)")
		p     = flag.Int("p", 8, "processors (paper: 16)")
		m     = flag.Int("m", 3, "scale-free attachment degree")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "smaller sweeps")
		fig   = flag.String("fig", "", "run one experiment: fig4..fig8, analysis, ablations, scaling, or paper (full n=50,000 tier)")
		trace = flag.String("trace", "", "write a phase-span trace (JSONL) of every engine run to this file; convert with aatrace")
		model = flag.String("model", "", "calibration JSON (from aacluster -calibrate -calibrate-out) replacing the default LogP model")
	)
	flag.Parse()
	cfg := harness.Config{N: *n, P: *p, M: *m, Seed: *seed, Quick: *quick}
	if *fig == "paper" {
		// The paper tier defaults to the full n=50,000 / P=16 testbed, not
		// the laptop shrink: drop the flag defaults unless explicitly set,
		// so harness.Paper's own defaults take over (-n 2000 still scales
		// it down for a dry run).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["n"] {
			cfg.N = 0
		}
		if !set["p"] {
			cfg.P = 0
		}
	}
	if *model != "" {
		cal, err := transport.LoadCalibration(*model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aaexperiments: -model: %v\n", err)
			os.Exit(1)
		}
		cfg.Model = cal.Model(*p)
		fmt.Printf("model: measured L=%v o=%v g=%v/B (calibrated %s)\n",
			cfg.Model.L, cfg.Model.O, cfg.Model.G, *model)
	}
	if *trace != "" {
		cfg.Obs = obs.NewTracer(obs.DefaultCapacity)
		defer func() {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aaexperiments: %v\n", err)
				return
			}
			defer f.Close()
			if err := obs.WriteJSONL(f, cfg.Obs.Spans()); err != nil {
				fmt.Fprintf(os.Stderr, "aaexperiments: writing trace: %v\n", err)
				return
			}
			fmt.Printf("trace: %d spans written to %s (%d dropped by the ring)\n",
				cfg.Obs.Len(), *trace, cfg.Obs.Dropped())
		}()
	}

	run := func(f func(harness.Config) (*harness.Result, error)) {
		start := time.Now()
		r, err := f(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aaexperiments: %v\n", err)
			os.Exit(1)
		}
		if err := r.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "aaexperiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *fig != "" {
		f := harness.ByID(*fig)
		if f == nil {
			fmt.Fprintf(os.Stderr, "aaexperiments: unknown figure %q (want fig4..fig8, analysis, ablations, scaling, or paper)\n", *fig)
			os.Exit(2)
		}
		run(f)
		return
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "analysis", "ablations", "scaling"} {
		run(harness.ByID(id))
	}
	fmt.Println(strings.Repeat("-", 72))
	fmt.Println("all experiments complete; see EXPERIMENTS.md for paper-vs-measured notes")
}
