// Command aapart partitions a graph (edge-list or Pajek on stdin) and
// reports cut/balance quality for one or all partitioners.
//
// Usage:
//
//	aagen -kind sbm -n 2000 | aapart -k 8 -algo all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anytime/internal/graph"
	"anytime/internal/partition"
)

func main() {
	var (
		k      = flag.Int("k", 8, "number of parts")
		algo   = flag.String("algo", "multilevel", "multilevel | greedy | roundrobin | blocked | random | all")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "edgelist", "input: edgelist | pajek | metis")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch *format {
	case "edgelist":
		g, err = graph.ReadEdgeList(os.Stdin)
	case "pajek":
		g, err = graph.ReadPajek(os.Stdin)
	case "metis":
		g, err = graph.ReadMETIS(os.Stdin)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapart: %v\n", err)
		os.Exit(1)
	}

	byName := map[string]partition.Partitioner{
		"multilevel": partition.Multilevel{Seed: *seed},
		"greedy":     partition.Greedy{Seed: *seed},
		"roundrobin": partition.RoundRobin{},
		"blocked":    partition.Blocked{},
		"random":     partition.Random{Seed: *seed},
	}
	var algos []partition.Partitioner
	if *algo == "all" {
		for _, name := range []string{"multilevel", "greedy", "roundrobin", "blocked", "random"} {
			algos = append(algos, byName[name])
		}
	} else if pt, ok := byName[*algo]; ok {
		algos = append(algos, pt)
	} else {
		fmt.Fprintf(os.Stderr, "aapart: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("%-18s %10s %12s %10s   %s\n", "algorithm", "edge-cut", "imbalance", "max-cutsz", "part sizes")
	for _, pt := range algos {
		p, err := pt.Partition(g, *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aapart: %s: %v\n", pt.Name(), err)
			os.Exit(1)
		}
		q := partition.Evaluate(g, p)
		maxCut := 0
		for _, c := range q.CutSizes {
			if c > maxCut {
				maxCut = c
			}
		}
		sizes := make([]string, len(q.Sizes))
		for i, s := range q.Sizes {
			sizes[i] = fmt.Sprint(s)
		}
		fmt.Printf("%-18s %10d %12.3f %10d   [%s]\n",
			pt.Name(), q.EdgeCut, q.Imbalance, maxCut, strings.Join(sizes, " "))
	}
}
