// Command aagen generates workload graphs in edge-list or Pajek format.
//
// Usage:
//
//	aagen -kind ba -n 2000 -m 3 -seed 1 -format pajek > graph.net
//
// Kinds: ba (Barabási–Albert scale-free), er (Erdős–Rényi), ws
// (Watts–Strogatz), sbm (planted partition), rmat.
package main

import (
	"flag"
	"fmt"
	"os"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "ba", "generator: ba | er | ws | sbm | rmat")
		n       = flag.Int("n", 2000, "vertices (ba/er/ws/sbm) or 2^scale check (rmat)")
		m       = flag.Int("m", 3, "ba: edges per new vertex; er/rmat: total edges; ws: ring degree")
		c       = flag.Int("c", 8, "sbm: communities")
		pin     = flag.Float64("pin", 0.1, "sbm: intra-community edge probability")
		pout    = flag.Float64("pout", 0.005, "sbm: inter-community edge probability")
		beta    = flag.Float64("beta", 0.1, "ws: rewiring probability")
		scale   = flag.Int("scale", 11, "rmat: log2 of vertex count")
		minW    = flag.Int("minw", 0, "minimum edge weight (0 = unit weights)")
		maxW    = flag.Int("maxw", 0, "maximum edge weight")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "edgelist", "output: edgelist | pajek")
		connect = flag.Bool("connect", true, "join components so the graph is connected")
	)
	flag.Parse()
	w := gen.Weights{Min: graph.Weight(*minW), Max: graph.Weight(*maxW)}

	var g *graph.Graph
	var err error
	switch *kind {
	case "ba":
		g, err = gen.BarabasiAlbert(*n, *m, w, *seed)
	case "er":
		g, err = gen.ErdosRenyi(*n, *m, w, *seed)
	case "ws":
		g, err = gen.WattsStrogatz(*n, *m, *beta, w, *seed)
	case "sbm":
		g, _, err = gen.PlantedPartition(*n, *c, *pin, *pout, w, *seed)
	case "rmat":
		g, err = gen.RMAT(*scale, *m, 0.57, 0.19, 0.19, w, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aagen: %v\n", err)
		os.Exit(1)
	}
	if *connect {
		gen.Connectify(g, *seed)
	}
	switch *format {
	case "edgelist":
		err = graph.WriteEdgeList(os.Stdout, g)
	case "pajek":
		err = graph.WritePajek(os.Stdout, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aagen: %d vertices, %d edges (%s)\n",
		g.NumVertices(), g.NumEdges(), *kind)
}
