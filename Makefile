# Tier-1 gate for this repository: everything a change must keep green.
# `make check` is what CI (and the README) point at.

GO ?= go

.PHONY: check build test vet race bench clean

check: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The serving subsystem's single-writer/multi-reader contract and the
# engine underneath it are exercised under the race detector.
race:
	$(GO) test -race ./internal/serve ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
