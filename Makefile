# Tier-1 gate for this repository: everything a change must keep green.
# `make check` is what CI (and the README) point at.

GO ?= go

.PHONY: check build test vet race chaos chaos-cluster bench bench-json bench-compare bench-paper obs-check obs-cluster-check transport-check clean

check: build test vet race transport-check chaos-cluster obs-cluster-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The serving subsystem's single-writer/multi-reader contract and the
# engine underneath it are exercised under the race detector.
race:
	$(GO) test -race ./internal/serve ./internal/core

# Chaos soak: the seeded fault-injection sweep (crash timings × message-
# fault mixes) plus the fault and cluster layers, under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/core
	$(GO) test -race -count=1 ./internal/fault ./internal/cluster
	$(GO) test -race -count=1 -run 'TestServer|TestHealthz|TestClient' ./internal/serve

# Cluster chaos gate: the real-OS-process robustness suite under the race
# detector — SIGKILL one of three ranks mid-recombination (heartbeat
# detection, degraded convergence, shard-restored rejoin, bit-identical
# result) and dynamic vertex additions across processes — plus an
# end-to-end aacluster run streaming a vertex batch over the wire,
# verified against the exact oracle of the grown graph.
chaos-cluster:
	$(GO) test -race -count=1 -run 'TestChaosSIGKILLRejoinBitIdentical|TestMultiProcessTCPDynamicEvents|TestRunnerInprocCrashRejoinBitIdentical' ./internal/rank
	$(GO) run ./cmd/aacluster -launch -p 3 -n 300 -events 5 -verify

bench:
	$(GO) test -bench=. -benchmem ./...

# Archive the RC-phase and figure-reproduction benchmarks as JSON
# (ns/op, allocs/op, and per-step shipping metrics) for diffing runs.
# BENCHTIME trades archival stability for runtime: the figure benches run
# few iterations per second, so 1s runs are noisy. BenchmarkPaperScale is
# in the sweep but self-skips unless AA_PAPER_BENCH=1 is exported, so the
# default archive stays laptop-safe while a paper-tier run lands in the
# same JSON.
BENCHTIME ?= 2s
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkRC|BenchmarkFig4|BenchmarkFig8|BenchmarkTransportRoundTrip|BenchmarkPaperScale' -benchtime $(BENCHTIME) -benchmem ./... \
		| $(GO) run ./cmd/benchjson > BENCH_rc.json

# Regression gate: rerun the RC relax/refine-phase benchmarks (plus the
# tracer-enabled step benchmark) and fail if any ns/op regresses more than
# 15% against the committed baseline.
bench-compare:
	{ $(GO) test -run '^$$' -bench 'BenchmarkRCRelaxPhase|BenchmarkRCRefinePhase|BenchmarkRCStepTraced' -benchmem ./internal/core ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTransportRoundTrip' -benchmem ./internal/transport ; } \
		| $(GO) run ./cmd/benchjson -compare BENCH_rc.json

# Paper-scale tier (opt-in, not part of `make check`): one full n=50,000 /
# P=16 absorption trajectory — ~20 GB of DV state and minutes of wall time.
# The AA_PAPER_BENCH gate keeps `bench`/`bench-json` laptop-safe; -benchtime
# 1x runs exactly one trajectory. Results belong in EXPERIMENTS.md.
bench-paper:
	AA_PAPER_BENCH=1 $(GO) test -run '^$$' -bench 'BenchmarkPaperScale' -benchtime 1x -timeout 120m -v .

# Transport gate: the pluggable message plane (frames, codec, fault
# wrapper, TCP links) and the one-rank-per-process runner under the race
# detector — including the integration test that spawns real OS processes
# over a TCP mesh and checks bit-identical convergence against inproc.
transport-check:
	$(GO) vet ./internal/transport ./internal/rank ./cmd/aacluster
	$(GO) test -race -count=1 ./internal/transport ./internal/rank

# Observability gate: vet the tree and verify the zero-cost contract — a
# nil/disabled tracer must add no allocations to instrumented paths.
obs-check:
	$(GO) vet ./...
	$(GO) test -run 'ZeroAlloc|NilTracer' -count=1 ./internal/obs ./internal/core

# Cluster observability gate: the rank hot path's zero-alloc telemetry
# contract, the Prometheus text parse/merge/aggregate layer (including a
# rank dying mid-scrape), deterministic multi-file trace merging, and the
# acceptance test — three real OS processes each serving /metrics, scraped
# into one well-formed merged exposition with live cross-rank series.
obs-cluster-check:
	$(GO) test -run 'TestRankTelemetryZeroAlloc' -count=1 ./internal/rank
	$(GO) test -count=1 ./internal/obs
	$(GO) test -run 'TestClusterScrapeMergedMetrics|TestRunnerTelemetrySnapshot' -count=1 ./internal/rank

clean:
	$(GO) clean ./...
